"""Cross-query distance cache tests."""

from __future__ import annotations

import pytest

from repro.core import PrunedDPPlusPlusSolver
from repro.core.cache import LabelDistanceCache, PreparedGraph
from repro.graph import generators


@pytest.fixture
def graph():
    return generators.random_graph(
        50, 110, num_query_labels=6, label_frequency=4, seed=21
    )


class TestLabelDistanceCache:
    def test_hit_miss_accounting(self, graph):
        cache = LabelDistanceCache(graph)
        cache.distances("q0")
        cache.distances("q1")
        cache.distances("q0")
        assert cache.misses == 2
        assert cache.hits == 1
        assert len(cache) == 2
        assert "q0" in cache and "q5" not in cache

    def test_unknown_label_raises(self, graph):
        with pytest.raises(KeyError):
            LabelDistanceCache(graph).distances("ghost")

    def test_cached_arrays_identical_to_fresh(self, graph):
        from repro.graph.shortest_paths import multi_source_dijkstra

        cache = LabelDistanceCache(graph)
        dist_cached, parent_cached = cache.distances("q2")
        dist_fresh, _ = multi_source_dijkstra(
            graph, list(graph.nodes_with_label("q2"))
        )
        assert dist_cached == dist_fresh

    def test_clear(self, graph):
        cache = LabelDistanceCache(graph)
        cache.distances("q0")
        cache.clear()
        assert len(cache) == 0


class TestPreparedGraph:
    def test_same_answers_as_cold_solver(self, graph):
        prepared = PreparedGraph(graph)
        for labels in (["q0", "q1"], ["q1", "q2", "q3"], ["q0", "q3"]):
            warm = prepared.solve(labels)
            cold = PrunedDPPlusPlusSolver(graph, labels).solve()
            assert warm.optimal and cold.optimal
            assert warm.weight == pytest.approx(cold.weight)

    def test_shared_labels_reuse_dijkstras(self, graph):
        prepared = PreparedGraph(graph)
        prepared.solve(["q0", "q1"])
        misses_before = prepared.cache.misses
        prepared.solve(["q0", "q2"])  # q0 cached, q2 fresh
        assert prepared.cache.misses == misses_before + 1
        assert prepared.cache.hits >= 1
        assert prepared.cached_labels == 3

    def test_algorithm_selection(self, graph):
        prepared = PreparedGraph(graph)
        basic = prepared.solve(["q0", "q1"], algorithm="basic")
        pp = prepared.solve(["q0", "q1"], algorithm="pruneddp++")
        assert basic.weight == pytest.approx(pp.weight)
        with pytest.raises(ValueError):
            prepared.solve(["q0"], algorithm="magic")

    def test_kwargs_forwarded(self, graph):
        prepared = PreparedGraph(graph)
        result = prepared.solve(["q0", "q1", "q2"], epsilon=1.0)
        assert result.ratio <= 2.0 + 1e-9

    def test_dpbf_with_cache(self, graph):
        prepared = PreparedGraph(graph)
        result = prepared.solve(["q0", "q1"], algorithm="dpbf")
        assert result.optimal


class TestCacheGraphBinding:
    def test_foreign_graph_cache_rejected(self, graph):
        """A cache bound to another graph must be refused, not silently
        misindexed."""
        from repro.core import PrunedDPPlusPlusSolver
        from repro.graph import generators

        other = generators.random_graph(
            50, 110, num_query_labels=6, label_frequency=4, seed=99
        )
        cache = LabelDistanceCache(other)
        with pytest.raises(ValueError):
            PrunedDPPlusPlusSolver(
                graph, ["q0", "q1"], distance_cache=cache
            ).solve()

    def test_disconnected_graph_with_cache_stays_correct(self):
        """solve_gst now solves disconnected graphs whole (no node
        renumbering), so a shared cache stays valid and answers right."""
        from repro import Graph, solve_gst

        g = Graph()
        a = g.add_node(labels=["x"])
        b = g.add_node(labels=["y"])
        g.add_edge(a, b, 4.0)
        c = g.add_node(labels=["x"])
        d = g.add_node(labels=["y"])
        g.add_edge(c, d, 1.0)
        cache = LabelDistanceCache(g)
        result = solve_gst(g, ["x", "y"], distance_cache=cache)
        assert result.weight == pytest.approx(1.0)
        assert result.optimal


class TestLRUBound:
    def test_max_labels_validation(self, graph):
        with pytest.raises(ValueError):
            LabelDistanceCache(graph, max_labels=0)
        with pytest.raises(ValueError):
            LabelDistanceCache(graph, max_labels=-3)

    def test_unbounded_by_default(self, graph):
        cache = LabelDistanceCache(graph)
        for i in range(6):
            cache.distances(f"q{i}")
        assert len(cache) == 6
        assert cache.evictions == 0

    def test_oldest_label_evicted_first(self, graph):
        cache = LabelDistanceCache(graph, max_labels=2)
        cache.distances("q0")
        cache.distances("q1")
        cache.distances("q2")  # pushes q0 out
        assert len(cache) == 2
        assert cache.evictions == 1
        assert "q0" not in cache
        assert "q1" in cache and "q2" in cache

    def test_hit_refreshes_recency(self, graph):
        cache = LabelDistanceCache(graph, max_labels=2)
        cache.distances("q0")
        cache.distances("q1")
        cache.distances("q0")  # q0 becomes most recent
        cache.distances("q2")  # so q1 is the one evicted
        assert "q0" in cache
        assert "q1" not in cache

    def test_evicted_label_recomputed_on_return(self, graph):
        cache = LabelDistanceCache(graph, max_labels=1)
        first, _ = cache.distances("q0")
        cache.distances("q1")
        again, _ = cache.distances("q0")  # recomputed after eviction
        assert cache.evictions == 2
        assert again == first

    def test_counters_snapshot(self, graph):
        cache = LabelDistanceCache(graph, max_labels=2)
        cache.distances("q0")
        cache.distances("q0")
        cache.distances("q1")
        cache.distances("q2")
        assert cache.counters() == {
            "hits": 1,
            "misses": 3,
            "evictions": 1,
            "cached_labels": 2,
            "max_labels": 2,
            "warm_loads": 0,
            "warm_labels": 0,
        }


class TestPreload:
    """Store warm-loading into the live cache (repro.store wiring)."""

    def test_preload_counts_warm_not_miss(self, graph):
        from repro.graph.shortest_paths import multi_source_dijkstra

        cache = LabelDistanceCache(graph)
        entry = multi_source_dijkstra(graph, list(graph.nodes_with_label("q0")))
        cache.preload("q0", entry)
        assert cache.warm_loads == 1
        assert cache.misses == 0
        assert cache.is_warm("q0")
        # A later query on q0 is a hit served from the preloaded arrays.
        dist, parent = cache.distances("q0")
        assert cache.hits == 1
        assert dist == entry[0]

    def test_preload_validates_array_shape(self, graph):
        cache = LabelDistanceCache(graph)
        with pytest.raises(ValueError, match="nodes"):
            cache.preload("q0", ([0.0], [-1]))

    def test_preload_keeps_live_entry(self, graph):
        cache = LabelDistanceCache(graph)
        live_dist, _ = cache.distances("q0")
        cache.preload("q0", ([0.0] * graph.num_nodes, [-1] * graph.num_nodes))
        dist, _ = cache.distances("q0")
        assert dist == live_dist  # the live arrays won

    def test_eviction_clears_warm_flag(self, graph):
        from repro.graph.shortest_paths import multi_source_dijkstra

        cache = LabelDistanceCache(graph, max_labels=1)
        entry = multi_source_dijkstra(graph, list(graph.nodes_with_label("q0")))
        cache.preload("q0", entry)
        cache.distances("q1")  # evicts q0
        assert not cache.is_warm("q0")
        assert cache.counters()["warm_labels"] == 0

    def test_clear_resets_warm(self, graph):
        from repro.graph.shortest_paths import multi_source_dijkstra

        cache = LabelDistanceCache(graph)
        entry = multi_source_dijkstra(graph, list(graph.nodes_with_label("q0")))
        cache.preload("q0", entry)
        cache.clear()
        assert not cache.is_warm("q0")
        assert len(cache) == 0
