"""QueryContext preprocessing tests."""

from __future__ import annotations

import networkx as nx
import pytest

from repro import Graph, GSTQuery, InfeasibleQueryError
from repro.core.context import QueryContext
from repro.graph import generators

INF = float("inf")


def build(graph, labels):
    return QueryContext.build(graph, GSTQuery(labels))


class TestDistances:
    def test_path_graph(self, path_graph):
        ctx = build(path_graph, ["x", "y"])
        assert ctx.dist[0] == [0.0, 1.0, 3.0]   # to label x at node 0
        assert ctx.dist[1] == [3.0, 2.0, 0.0]   # to label y at node 2
        assert ctx.k == 2
        assert ctx.full_mask == 0b11

    def test_node_masks(self, path_graph):
        ctx = build(path_graph, ["x", "y"])
        assert ctx.node_masks == [0b01, 0, 0b10]

    def test_matches_networkx_virtual_node(self):
        """Per-label preprocessing == Dijkstra from an *independent*
        virtual node (one at a time — Section 3.1, not the enhanced
        graph of Section 4.1)."""
        for seed in range(5):
            g = generators.random_graph(
                25, 45, num_query_labels=3, label_frequency=3, seed=seed
            )
            ctx = build(g, ["q0", "q1", "q2"])
            for i in range(3):
                nxg = nx.Graph()
                for u, v, w in g.edges():
                    nxg.add_edge(u, v, weight=w)
                for node in g.nodes_with_label(f"q{i}"):
                    nxg.add_edge(("virt", i), node, weight=0.0)
                expected = nx.single_source_dijkstra_path_length(
                    nxg, ("virt", i)
                )
                for node in g.nodes():
                    assert ctx.dist[i][node] == pytest.approx(
                        expected.get(node, INF)
                    )

    def test_build_seconds_recorded(self, path_graph):
        ctx = build(path_graph, ["x"])
        assert ctx.build_seconds >= 0.0


class TestFeasibility:
    def test_connected_is_feasible(self, path_graph):
        ctx = build(path_graph, ["x", "y"])
        assert ctx.check_feasible_from(0)
        assert ctx.any_feasible_root() is not None
        ctx.require_feasible()

    def test_split_labels_infeasible(self):
        g = Graph()
        g.add_node(labels=["x"])
        g.add_node(labels=["y"])
        ctx = build(g, ["x", "y"])
        assert ctx.any_feasible_root() is None
        with pytest.raises(InfeasibleQueryError):
            ctx.require_feasible()

    def test_feasible_in_one_component(self, disconnected_graph):
        ctx = build(disconnected_graph, ["x", "y"])
        # Component {c1,d1,e1} covers both labels.
        assert ctx.any_feasible_root() is not None
        ctx.require_feasible()


class TestShortestPathEdges:
    def test_path_to_label(self, path_graph):
        ctx = build(path_graph, ["x", "y"])
        edges = ctx.shortest_path_edges(1, 0)  # from node 0 to label y
        total = sum(w for _, _, w in edges)
        assert total == pytest.approx(3.0)
        # Path is node0 -> node1 -> node2.
        assert [(u, v) for u, v, _ in edges] == [(0, 1), (1, 2)]

    def test_zero_path_when_node_carries_label(self, path_graph):
        ctx = build(path_graph, ["x", "y"])
        assert ctx.shortest_path_edges(0, 0) == []

    def test_unreachable_raises(self):
        g = Graph()
        g.add_node(labels=["x"])
        g.add_node(labels=["y"])
        ctx = build(g, ["x", "y"])
        with pytest.raises(ValueError):
            ctx.shortest_path_edges(1, 0)

    def test_path_weight_equals_distance_everywhere(self):
        g = generators.random_graph(
            30, 60, num_query_labels=2, label_frequency=3, seed=9
        )
        ctx = build(g, ["q0", "q1"])
        for node in g.nodes():
            for i in range(2):
                edges = ctx.shortest_path_edges(i, node)
                total = sum(w for _, _, w in edges)
                assert total == pytest.approx(ctx.dist[i][node])
                # The far end carries the label.
                end = edges[-1][1] if edges else node
                assert g.has_label(end, f"q{i}")


class TestNearestLabel:
    def test_nearest(self, path_graph):
        ctx = build(path_graph, ["x", "y"])
        assert ctx.nearest_label_distance(1) == 1.0
        assert ctx.nearest_label_distance(0) == 0.0
