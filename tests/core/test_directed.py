"""Directed GST tests: solver vs fixpoint oracle, arborescence validity."""

from __future__ import annotations

import random

import pytest

from repro import GraphError, InfeasibleQueryError
from repro.core.directed import (
    DirectedGSTSolver,
    DirectedSteinerTree,
    brute_force_directed_gst,
)
from repro.graph.digraph import DiGraph


def random_digraph(seed: int, n: int = 10, extra: int = 12, k: int = 3) -> DiGraph:
    """Random DiGraph where node 0 reaches everything (feasibility)."""
    rng = random.Random(seed)
    g = DiGraph()
    for _ in range(n):
        g.add_node()
    # Random out-arborescence from 0 guarantees reachability.
    order = list(range(1, n))
    rng.shuffle(order)
    placed = [0]
    for node in order:
        parent = placed[rng.randrange(len(placed))]
        g.add_edge(parent, node, rng.randint(1, 9))
        placed.append(node)
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, rng.randint(1, 9))
    for i in range(k):
        for node in rng.sample(range(n), 2):
            g.add_labels(node, [f"q{i}"])
    return g


class TestDiGraph:
    def test_directed_edges(self):
        g = DiGraph()
        a, b = g.add_node(), g.add_node()
        g.add_edge(a, b, 2.0)
        assert g.has_edge(a, b)
        assert not g.has_edge(b, a)
        assert g.edge_weight(a, b) == 2.0
        with pytest.raises(GraphError):
            g.edge_weight(b, a)
        assert g.out_neighbors(a) == [(b, 2.0)]
        assert g.in_neighbors(b) == [(a, 2.0)]

    def test_parallel_keeps_min(self):
        g = DiGraph()
        a, b = g.add_node(), g.add_node()
        g.add_edge(a, b, 5.0)
        g.add_edge(a, b, 2.0)
        assert g.num_edges == 1
        assert g.edge_weight(a, b) == 2.0
        g.validate()

    def test_self_loop_rejected(self):
        g = DiGraph()
        a = g.add_node()
        with pytest.raises(GraphError):
            g.add_edge(a, a)

    def test_validate_random(self):
        g = random_digraph(1)
        g.validate()
        assert g.num_edges == len(list(g.edges()))


class TestDirectedSteinerTree:
    def test_valid_arborescence(self):
        g = DiGraph()
        r, a, b = g.add_node(), g.add_node(labels=["x"]), g.add_node(labels=["y"])
        g.add_edge(r, a, 1.0)
        g.add_edge(r, b, 2.0)
        tree = DirectedSteinerTree(r, [(r, a, 1.0), (r, b, 2.0)])
        tree.validate(g, ["x", "y"])
        assert tree.weight == 3.0

    def test_double_parent_rejected(self):
        g = DiGraph()
        r, a, b = g.add_node(), g.add_node(), g.add_node()
        g.add_edge(r, b, 1.0)
        g.add_edge(a, b, 1.0)
        g.add_edge(r, a, 1.0)
        bad = DirectedSteinerTree(r, [(r, b, 1.0), (a, b, 1.0), (r, a, 1.0)])
        with pytest.raises(GraphError):
            bad.validate(g)

    def test_disconnected_rejected(self):
        g = DiGraph()
        r, a, b, c = (g.add_node() for _ in range(4))
        g.add_edge(r, a, 1.0)
        g.add_edge(b, c, 1.0)
        bad = DirectedSteinerTree(r, [(r, a, 1.0), (b, c, 1.0)])
        with pytest.raises(GraphError):
            bad.validate(g)


class TestDirectedSolver:
    def test_simple_chain(self):
        """Directionality matters: only the chain root can cover both."""
        g = DiGraph()
        a = g.add_node(labels=["x"])
        b = g.add_node()
        c = g.add_node(labels=["y"])
        g.add_edge(a, b, 1.0)
        g.add_edge(b, c, 2.0)
        result = DirectedGSTSolver(g, ["x", "y"]).solve()
        assert result.optimal
        assert result.weight == pytest.approx(3.0)
        assert result.tree.root == a
        result.tree.validate(g, ["x", "y"])

    def test_direction_forces_different_answer_than_undirected(self):
        """y -> x edge only: covering needs the root at y's side."""
        g = DiGraph()
        x = g.add_node(labels=["x"])
        y = g.add_node(labels=["y"])
        g.add_edge(y, x, 5.0)
        result = DirectedGSTSolver(g, ["x", "y"]).solve()
        assert result.weight == pytest.approx(5.0)
        assert result.tree.root == y

    def test_infeasible_when_no_root_reaches_all(self):
        g = DiGraph()
        x = g.add_node(labels=["x"])
        y = g.add_node(labels=["y"])
        mid = g.add_node()
        # Both point INTO mid; nothing reaches both x and y.
        g.add_edge(x, mid, 1.0)
        g.add_edge(y, mid, 1.0)
        with pytest.raises(InfeasibleQueryError):
            DirectedGSTSolver(g, ["x", "y"]).solve()

    def test_single_label(self):
        g = DiGraph()
        a = g.add_node(labels=["x"])
        b = g.add_node()
        g.add_edge(b, a, 3.0)
        result = DirectedGSTSolver(g, ["x"]).solve()
        assert result.weight == 0.0
        assert result.tree.nodes == frozenset({a})

    @pytest.mark.parametrize("seed", range(12))
    def test_agrees_with_fixpoint_oracle(self, seed):
        g = random_digraph(seed)
        labels = ["q0", "q1", "q2"]
        expected = brute_force_directed_gst(g, labels)
        result = DirectedGSTSolver(g, labels).solve()
        assert result.optimal, seed
        assert result.weight == pytest.approx(expected), seed
        result.tree.validate(g, labels)
        assert result.tree.weight == pytest.approx(expected)
        assert result.stats.reopened == 0

    def test_rerooting_makes_distance_bounds_inadmissible(self):
        """Regression for the documented design decision: a 'one-label'
        style bound built from dist(v -> V_i) would prune node 9's seed
        states here (9 cannot itself... actually it CAN; the killer is
        nodes inside optimal answers that cannot reach some group), yet
        the optimum routes through exactly such states.  The solver must
        find the true optimum on this instance."""
        g = random_digraph(6)
        labels = ["q0", "q1", "q2"]
        expected = brute_force_directed_gst(g, labels)
        result = DirectedGSTSolver(g, labels).solve()
        assert result.weight == pytest.approx(expected)
        # The optimal root reaches everything, but some constituent
        # subtree states' roots cannot (dist to a group is infinite):
        # an A* over per-root distances would have pruned them.
        tree = result.tree
        from repro.core.directed import _forward_distances

        dists = [
            _forward_distances(g, list(g.nodes_with_label(label)))[0]
            for label in labels
        ]
        assert any(
            any(dists[i][v] == float("inf") for i in range(3))
            for v in tree.nodes
        )

    def test_progressive_trace_monotone(self):
        g = random_digraph(7, n=30, extra=60, k=4)
        labels = [f"q{i}" for i in range(4)]
        result = DirectedGSTSolver(g, labels).solve()
        ubs = [p.best_weight for p in result.trace]
        lbs = [p.lower_bound for p in result.trace]
        assert all(b <= a + 1e-9 for a, b in zip(ubs, ubs[1:]))
        assert all(b >= a - 1e-9 for a, b in zip(lbs, lbs[1:]))
        assert result.trace[-1].ratio == pytest.approx(1.0)

    def test_epsilon_mode(self):
        g = random_digraph(9, n=30, extra=60, k=4)
        labels = [f"q{i}" for i in range(4)]
        exact = DirectedGSTSolver(g, labels).solve()
        anytime = DirectedGSTSolver(g, labels, epsilon=1.0).solve()
        assert anytime.weight <= 2.0 * exact.weight + 1e-9
        assert anytime.stats.states_popped <= exact.stats.states_popped

    def test_all_labels_one_node(self):
        g = DiGraph()
        v = g.add_node(labels=["a", "b"])
        w = g.add_node()
        g.add_edge(v, w, 1.0)
        result = DirectedGSTSolver(g, ["a", "b"]).solve()
        assert result.weight == 0.0
