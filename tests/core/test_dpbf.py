"""DPBF-specific tests (the non-progressive prior state of the art)."""

from __future__ import annotations

import pytest

from repro import InfeasibleQueryError
from repro.core import DPBFSolver, brute_force_gst, dpbf_optimal_weight
from repro.graph import generators


class TestDPBF:
    def test_path(self, path_graph):
        result = DPBFSolver(path_graph, ["x", "y"]).solve()
        assert result.optimal
        assert result.weight == pytest.approx(3.0)
        result.tree.validate(path_graph, ["x", "y"])

    def test_agrees_with_brute_force(self, random_graph_factory):
        for seed in range(8):
            g = random_graph_factory(seed, n=10, extra_edges=8, k=3)
            labels = ["q0", "q1", "q2"]
            expected, _ = brute_force_gst(g, labels)
            assert dpbf_optimal_weight(g, labels) == pytest.approx(expected)

    def test_no_trace_until_done(self, path_graph):
        """DPBF's defining limitation: exactly one (final) answer event."""
        result = DPBFSolver(path_graph, ["x", "y"]).solve()
        assert len(result.trace) == 1
        assert result.trace[0].ratio == pytest.approx(1.0)

    def test_infeasible_raises(self, path_graph):
        with pytest.raises(InfeasibleQueryError):
            DPBFSolver(path_graph, ["x", "nope"]).solve()

    def test_max_states_interrupt(self):
        g = generators.random_graph(
            50, 120, num_query_labels=4, label_frequency=4, seed=0
        )
        labels = [f"q{i}" for i in range(4)]
        result = DPBFSolver(g, labels, max_states=5).solve()
        assert result.tree is None
        assert result.weight == float("inf")
        assert not result.optimal

    def test_stats_populated(self, star_graph):
        result = DPBFSolver(star_graph, ["x", "y", "z"]).solve()
        stats = result.stats
        assert stats.states_popped > 0
        assert stats.states_pushed >= stats.states_popped
        assert stats.peak_live_states > 0
        assert stats.total_seconds >= 0.0
