"""White-box tests of the shared search engine (core/engine.py)."""

from __future__ import annotations

import pytest

from repro import Graph, GSTQuery
from repro.core import (
    BasicSolver,
    PrunedDPPlusPlusSolver,
    PrunedDPSolver,
)
from repro.core.context import QueryContext
from repro.core.engine import SearchEngine
from repro.graph import generators


def engine_for(graph, labels, **kwargs):
    ctx = QueryContext.build(graph, GSTQuery(labels))
    kwargs.setdefault("algorithm_name", "test")
    return SearchEngine(ctx, **kwargs)


class TestDeterminism:
    def test_same_input_same_stats(self):
        g = generators.random_graph(
            40, 90, num_query_labels=4, label_frequency=4, seed=17
        )
        labels = [f"q{i}" for i in range(4)]
        for solver_cls in (BasicSolver, PrunedDPSolver, PrunedDPPlusPlusSolver):
            a = solver_cls(g, labels).solve()
            b = solver_cls(g, labels).solve()
            assert a.weight == b.weight
            assert a.stats.states_popped == b.stats.states_popped
            assert a.stats.states_pushed == b.stats.states_pushed
            assert a.tree.edges == b.tree.edges


class TestComplementShortcut:
    def test_shortcut_forms_goal_states(self):
        """On a graph where complementary halves meet at a middle node,
        PrunedDP must produce merge-derived goal states."""
        g = Graph()
        a = g.add_node(labels=["x"])
        mid = g.add_node()
        b = g.add_node(labels=["y"])
        g.add_edge(a, mid, 1.0)
        g.add_edge(mid, b, 1.0)
        result = PrunedDPSolver(g, ["x", "y"]).solve()
        assert result.optimal
        assert result.weight == pytest.approx(2.0)
        assert result.stats.merges_performed >= 0  # engine ran merges path

    def test_shortcut_state_counts_not_worse(self):
        """Disabling the complement shortcut never reduces popped states."""

        class NoShortcut(PrunedDPSolver):
            algorithm_name = "PrunedDP[no-shortcut]"
            complement_shortcut = False

        g = generators.random_graph(
            35, 80, num_query_labels=4, label_frequency=4, seed=9
        )
        labels = [f"q{i}" for i in range(4)]
        with_shortcut = PrunedDPSolver(g, labels).solve()
        without = NoShortcut(g, labels).solve()
        assert with_shortcut.weight == pytest.approx(without.weight)
        assert (
            with_shortcut.stats.states_popped
            <= without.stats.states_popped + 5
        )


class TestEngineKnobValidation:
    def test_bad_merge_factor(self, star_graph):
        with pytest.raises(ValueError):
            engine_for(star_graph, ["x", "y"], merge_factor=0.0)
        with pytest.raises(ValueError):
            engine_for(star_graph, ["x", "y"], merge_factor=1.5)

    def test_valid_merge_factor_boundary(self, star_graph):
        engine = engine_for(star_graph, ["x", "y"], merge_factor=1.0)
        result = engine.run()
        assert result.weight == pytest.approx(3.0)


class TestProgressiveToggle:
    def test_non_progressive_mode_skips_feasible_construction(self):
        g = generators.random_graph(
            40, 90, num_query_labels=4, label_frequency=4, seed=3
        )
        labels = [f"q{i}" for i in range(4)]
        progressive = BasicSolver(g, labels, progressive=True).solve()
        pure = BasicSolver(g, labels, progressive=False).solve()
        assert pure.weight == pytest.approx(progressive.weight)
        assert pure.stats.feasible_built == 0
        assert progressive.stats.feasible_built > 0

    def test_non_progressive_still_optimal_and_traced_at_end(self):
        g = generators.random_graph(
            30, 60, num_query_labels=3, label_frequency=3, seed=4
        )
        result = BasicSolver(g, ["q0", "q1", "q2"], progressive=False).solve()
        assert result.optimal
        assert result.trace[-1].ratio == pytest.approx(1.0)


class TestOnFeasibleHook:
    def test_hook_sees_valid_covering_trees(self):
        g = generators.random_graph(
            30, 70, num_query_labels=3, label_frequency=3, seed=5
        )
        labels = ["q0", "q1", "q2"]
        seen = []
        result = BasicSolver(g, labels, on_feasible=seen.append).solve()
        assert seen
        for tree in seen:
            tree.validate(g, labels)
        # The optimum is among (or equal to the best of) the collected trees.
        assert min(t.weight for t in seen) == pytest.approx(result.weight)


class TestStatsCoherence:
    @pytest.mark.parametrize(
        "solver_cls", [BasicSolver, PrunedDPSolver, PrunedDPPlusPlusSolver]
    )
    def test_counters_consistent(self, solver_cls):
        g = generators.random_graph(
            35, 75, num_query_labels=3, label_frequency=4, seed=6
        )
        result = solver_cls(g, ["q0", "q1", "q2"]).solve()
        stats = result.stats
        assert 0 < stats.states_popped <= stats.states_pushed
        assert stats.states_expanded <= stats.states_popped
        assert stats.peak_live_states >= stats.peak_store_size
        assert stats.peak_live_states >= stats.peak_queue_size
        assert stats.total_seconds >= stats.init_seconds >= 0.0
        assert stats.estimated_bytes > 0

    def test_plusplus_counts_table_entries(self):
        g = generators.random_graph(
            30, 60, num_query_labels=4, label_frequency=3, seed=7
        )
        result = PrunedDPPlusPlusSolver(g, ["q0", "q1", "q2", "q3"]).solve()
        assert result.stats.table_entries > 0


class TestSeedStates:
    def test_multi_label_node_reached_by_merge(self):
        """A node carrying several query labels must still yield the
        combined state at cost 0 (via zero-cost merges of its seeds)."""
        g = Graph()
        v = g.add_node(labels=["a", "b"])
        w = g.add_node(labels=["c"])
        g.add_edge(v, w, 3.0)
        result = BasicSolver(g, ["a", "b", "c"]).solve()
        assert result.weight == pytest.approx(3.0)
        assert result.tree.nodes == frozenset({v, w})

    def test_all_group_members_seeded(self):
        g = Graph()
        nodes = [g.add_node(labels=["t"]) for _ in range(5)]
        for u, v in zip(nodes, nodes[1:]):
            g.add_edge(u, v, 1.0)
        result = BasicSolver(g, ["t"]).solve()
        # k=1: every seed is already a goal state; the first one sets
        # best=0 and the engine prunes the equal-cost duplicates.
        assert result.weight == 0.0
        assert result.stats.states_pushed == 1
        assert result.optimal
