"""Engine edge cases not exercised by the algorithm-level tests."""

from __future__ import annotations

import pytest

from repro import Graph, GSTQuery
from repro.core import BasicSolver, PrunedDPSolver
from repro.core.context import QueryContext
from repro.core.engine import SearchEngine
from repro.graph import generators


def run_engine(graph, labels, **kwargs):
    ctx = QueryContext.build(graph, GSTQuery(labels))
    kwargs.setdefault("algorithm_name", "test")
    return SearchEngine(ctx, **kwargs).run()


class TestTraceBehaviour:
    def test_trace_throttled_but_final_forced(self):
        """Tiny LB improvements are coalesced; the final point always
        lands and closes the gap."""
        g = generators.random_graph(
            50, 110, num_query_labels=4, label_frequency=4, seed=31
        )
        result = BasicSolver(g, [f"q{i}" for i in range(4)]).solve()
        # The trace is much shorter than the number of popped states.
        assert len(result.trace) < result.stats.states_popped
        assert result.trace[-1].ratio == pytest.approx(1.0)

    def test_progress_callback_sees_every_recorded_point(self):
        g = generators.random_graph(
            30, 60, num_query_labels=3, label_frequency=3, seed=32
        )
        events = []
        result = BasicSolver(
            g, ["q0", "q1", "q2"], on_progress=events.append
        ).solve()
        assert len(events) == len(result.trace)
        assert [e.elapsed for e in events] == [p.elapsed for p in result.trace]


class TestPolicyCombinations:
    def test_prune_half_without_merge_gate(self, star_graph):
        result = run_engine(
            star_graph, ["x", "y", "z"],
            prune_half=True, merge_factor=None, complement_shortcut=True,
        )
        assert result.weight == pytest.approx(6.0)

    def test_merge_gate_without_prune_half(self, star_graph):
        result = run_engine(
            star_graph, ["x", "y", "z"],
            prune_half=False, merge_factor=2.0 / 3.0,
        )
        assert result.weight == pytest.approx(6.0)

    def test_complement_shortcut_alone(self, star_graph):
        result = run_engine(
            star_graph, ["x", "y", "z"], complement_shortcut=True
        )
        assert result.weight == pytest.approx(6.0)

    @pytest.mark.parametrize("factor", [0.5, 2.0 / 3.0, 0.9, 1.0])
    def test_any_factor_above_two_thirds_exact(self, factor):
        """Factors >= 2/3 keep exactness (Theorem 2); smaller factors
        are unsound in general but we only assert the sound range."""
        if factor < 2.0 / 3.0 - 1e-9:
            pytest.skip("unsound range")
        g = generators.random_graph(
            25, 55, num_query_labels=4, label_frequency=3, seed=33
        )
        labels = [f"q{i}" for i in range(4)]
        reference = BasicSolver(g, labels).solve().weight

        class Variant(PrunedDPSolver):
            algorithm_name = f"PrunedDP[{factor}]"
            merge_factor = factor

        result = Variant(g, labels).solve()
        assert result.optimal
        assert result.weight == pytest.approx(reference)


class TestBestPruningInteractions:
    def test_incumbent_prunes_equal_cost_goal(self):
        """A goal with cost == best is pruned but optimality is still
        proven via queue drain."""
        g = Graph()
        a = g.add_node(labels=["x"])
        b = g.add_node(labels=["y"])
        g.add_edge(a, b, 2.0)
        result = BasicSolver(g, ["x", "y"]).solve()
        assert result.optimal
        assert result.weight == pytest.approx(2.0)

    def test_feasible_construction_skip_never_breaks_optimality(self):
        """With the skip heuristic (best <= state cost) active, the
        answer still matches the unskipped run."""
        g = generators.random_graph(
            40, 85, num_query_labels=4, label_frequency=4, seed=34
        )
        labels = [f"q{i}" for i in range(4)]
        with_skip = BasicSolver(g, labels).solve()
        # on_feasible disables the skip path.
        seen = []
        without_skip = BasicSolver(g, labels, on_feasible=seen.append).solve()
        assert with_skip.weight == pytest.approx(without_skip.weight)
        assert with_skip.stats.feasible_built <= without_skip.stats.feasible_built


class TestStoreInteraction:
    def test_peak_counters_monotone_relations(self):
        g = generators.random_graph(
            30, 65, num_query_labels=3, label_frequency=3, seed=35
        )
        result = PrunedDPSolver(g, ["q0", "q1", "q2"]).solve()
        stats = result.stats
        assert stats.peak_store_size <= stats.states_popped
        assert stats.peak_live_states <= stats.states_pushed + stats.peak_store_size
