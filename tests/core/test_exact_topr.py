"""Exact top-r enumeration tests, with a full-enumeration oracle."""

from __future__ import annotations

from itertools import combinations

import pytest

from repro import Graph, InfeasibleQueryError
from repro.core import BasicSolver
from repro.core.topr import exact_top_r_trees
from repro.core.tree import SteinerTree
from repro.graph import generators
from repro.graph.mst import is_tree


def is_reduced(graph: Graph, tree: SteinerTree, labels) -> bool:
    """No proper subtree covers the query <=> every leaf is necessary."""
    if not tree.edges:
        return True
    for leaf, degree in tree.degree_map().items():
        if degree != 1:
            continue
        rest = tree.nodes - {leaf}
        if all(
            any(graph.has_label(node, label) for node in rest)
            for label in labels
        ):
            return False  # removable leaf -> not reduced
    return True


def all_covering_trees(graph: Graph, labels) -> list:
    """Oracle: every distinct *reduced* covering tree, by edge-subset
    enumeration (the semantics of exact_top_r_trees).

    Exponential in the edge count — tiny graphs only.
    """
    edges = list(graph.edges())
    assert len(edges) <= 14, "oracle too slow beyond 14 edges"
    found = []
    # Single-node answers.
    for node in graph.nodes():
        if all(graph.has_label(node, label) for label in labels):
            found.append(SteinerTree.single_node(node))
    # Multi-edge answers.
    for size in range(1, graph.num_nodes):
        for subset in combinations(edges, size):
            if not is_tree(list(subset)):
                continue
            tree = SteinerTree(subset)
            if tree.covers(graph, labels) and is_reduced(graph, tree, labels):
                found.append(tree)
    found.sort(key=lambda t: (t.weight, t.edges, sorted(t.nodes)))
    return found


class TestExactTopR:
    def test_r_must_be_positive(self, path_graph):
        with pytest.raises(ValueError):
            exact_top_r_trees(path_graph, ["x", "y"], 0)

    def test_infeasible_raises(self, path_graph):
        with pytest.raises(InfeasibleQueryError):
            exact_top_r_trees(path_graph, ["x", "ghost"], 2)

    def test_diamond_exact_order(self, diamond_graph):
        trees = exact_top_r_trees(diamond_graph, ["x", "y"], 5)
        weights = [t.weight for t in trees]
        # Light route (2), then combinations through the heavy route.
        assert weights[0] == pytest.approx(2.0)
        assert weights == sorted(weights)
        oracle = all_covering_trees(diamond_graph, ["x", "y"])
        assert weights == [t.weight for t in oracle[: len(weights)]]

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_full_enumeration(self, seed):
        g = generators.random_graph(
            6, 4, num_query_labels=2, label_frequency=2, seed=seed
        )
        labels = ["q0", "q1"]
        oracle = all_covering_trees(g, labels)
        r = min(6, len(oracle))
        trees = exact_top_r_trees(g, labels, r, solver_cls=BasicSolver)
        assert [t.weight for t in trees] == pytest.approx(
            [t.weight for t in oracle[:r]]
        )
        # Distinctness.
        assert len({(t.edges, t.nodes) for t in trees}) == len(trees)
        for tree in trees:
            tree.validate(g, labels)

    def test_single_node_answers_enumerated(self):
        """Several nodes carry all labels: top-r must list them all at
        weight 0 before any edged tree (node-exclusion branching)."""
        g = Graph()
        a = g.add_node(labels=["p", "q"])
        b = g.add_node(labels=["p", "q"])
        c = g.add_node(labels=["p"])
        d = g.add_node(labels=["q"])
        g.add_edge(a, c, 1.0)
        g.add_edge(c, d, 1.0)
        g.add_edge(d, b, 1.0)
        trees = exact_top_r_trees(g, ["p", "q"], 3, solver_cls=BasicSolver)
        assert trees[0].weight == 0.0
        assert trees[1].weight == 0.0
        assert {tuple(t.nodes) for t in trees[:2]} == {(a,), (b,)}
        assert trees[2].weight > 0.0

    def test_fewer_than_r_answers(self):
        g = Graph()
        a = g.add_node(labels=["p"])
        b = g.add_node(labels=["q"])
        g.add_edge(a, b, 1.0)
        trees = exact_top_r_trees(g, ["p", "q"], 10, solver_cls=BasicSolver)
        # Exactly one covering tree exists.
        assert len(trees) == 1

    def test_default_solver_on_midsize(self):
        g = generators.random_graph(
            25, 45, num_query_labels=3, label_frequency=3, seed=3
        )
        labels = ["q0", "q1", "q2"]
        trees = exact_top_r_trees(g, labels, 4)
        weights = [t.weight for t in trees]
        assert weights == sorted(weights)
        for tree in trees:
            tree.validate(g, labels)

    def test_exact_never_worse_than_approximate(self):
        from repro.core.topr import top_r_trees

        g = generators.random_graph(
            20, 40, num_query_labels=3, label_frequency=3, seed=8
        )
        labels = ["q0", "q1", "q2"]
        exact = exact_top_r_trees(g, labels, 3)
        approx = top_r_trees(g, labels, 3)
        # Same top-1; exact's k-th answer is never heavier than
        # approximate's k-th (when both have a k-th).
        assert exact[0].weight == pytest.approx(approx[0].weight)
        for e, a in zip(exact, approx):
            assert e.weight <= a.weight + 1e-9

    def test_max_subproblems_bounds_work(self, diamond_graph):
        trees = exact_top_r_trees(
            diamond_graph, ["x", "y"], 50, max_subproblems=3,
            solver_cls=BasicSolver,
        )
        assert len(trees) >= 1  # best answer always emitted
