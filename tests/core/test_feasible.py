"""Feasible-solution construction tests (Algorithms 1/2/4, lines 10-15)."""

from __future__ import annotations

import pytest

from repro import Graph, GSTQuery
from repro.core.context import QueryContext
from repro.core.feasible import (
    build_feasible_tree,
    prune_redundant_leaves,
    steiner_tree_from_edges,
)
from repro.core.tree import SteinerTree
from repro.graph import generators


def ctx_for(graph, labels):
    return QueryContext.build(graph, GSTQuery(labels))


class TestSteinerTreeFromEdges:
    def test_empty_edges(self):
        t = steiner_tree_from_edges([], anchor=5)
        assert t.nodes == frozenset({5})
        assert t.weight == 0.0

    def test_duplicates_collapsed(self):
        t = steiner_tree_from_edges(
            [(0, 1, 2.0), (1, 0, 2.0), (0, 1, 2.0)], anchor=0
        )
        assert t.weight == 2.0
        assert t.num_edges == 1

    def test_cycle_resolved_by_mst(self):
        t = steiner_tree_from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)], anchor=0
        )
        assert t.weight == 2.0

    def test_disconnected_fragment_dropped(self):
        t = steiner_tree_from_edges(
            [(0, 1, 1.0), (5, 6, 1.0)], anchor=0
        )
        assert t.nodes == frozenset({0, 1})

    def test_anchor_isolated(self):
        t = steiner_tree_from_edges([(5, 6, 1.0)], anchor=0)
        assert t.nodes == frozenset({0})


class TestBuildFeasibleTree:
    def test_from_seed_state(self, star_graph):
        """State (a, {x}) at leaf a: feasible tree must cover y and z too."""
        ctx = ctx_for(star_graph, ["x", "y", "z"])
        tree = build_feasible_tree(ctx, [], root=1, covered_mask=0b001)
        assert tree is not None
        tree.validate(star_graph, ["x", "y", "z"])
        # Optimal is the star (weight 6); the construction from 'a'
        # unions the shortest paths a-h-b and a-h-c -> also weight 6.
        assert tree.weight == pytest.approx(6.0)

    def test_full_mask_returns_state_tree(self, path_graph):
        ctx = ctx_for(path_graph, ["x", "y"])
        state_edges = [(0, 1, 1.0), (1, 2, 2.0)]
        tree = build_feasible_tree(ctx, state_edges, root=0, covered_mask=0b11)
        assert tree.weight == pytest.approx(3.0)

    def test_unreachable_label_returns_none(self):
        g = Graph()
        a = g.add_node(labels=["x"])
        g.add_node(labels=["y"])  # disconnected
        c = g.add_node()
        g.add_edge(a, c, 1.0)
        ctx = ctx_for(g, ["x", "y"])
        assert build_feasible_tree(ctx, [], root=a, covered_mask=0b01) is None

    def test_always_feasible_and_above_optimum(self):
        """Property: the constructed tree is feasible and its weight is
        an upper bound on (>= ) the optimum."""
        from repro.core import brute_force_gst

        for seed in range(10):
            g = generators.random_graph(
                10, 16, num_query_labels=3, label_frequency=2, seed=seed
            )
            labels = ["q0", "q1", "q2"]
            optimum, _ = brute_force_gst(g, labels)
            ctx = ctx_for(g, labels)
            for root in g.nodes():
                for mask in (0b001, 0b010, 0b100):
                    # Simulate the seed state at a group member.
                    label_index = mask.bit_length() - 1
                    if not g.has_label(root, f"q{label_index}"):
                        continue
                    tree = build_feasible_tree(ctx, [], root, mask)
                    assert tree is not None
                    tree.validate(g, labels)
                    assert tree.weight >= optimum - 1e-9


class TestPruneRedundantLeaves:
    def test_prunes_uncovering_branch(self):
        """A dangling connector path is stripped after the MST union."""
        g = Graph()
        a = g.add_node(labels=["x"])
        b = g.add_node(labels=["y"])
        c = g.add_node()  # dead-end connector
        g.add_edge(a, b, 1.0)
        g.add_edge(b, c, 5.0)
        ctx = ctx_for(g, ["x", "y"])
        bloated = SteinerTree([(0, 1, 1.0), (1, 2, 5.0)])
        pruned = prune_redundant_leaves(ctx, bloated)
        assert pruned.weight == 1.0
        assert pruned.nodes == frozenset({0, 1})

    def test_keeps_sole_carriers(self, star_graph):
        ctx = ctx_for(star_graph, ["x", "y", "z"])
        star = SteinerTree.from_edge_pairs(star_graph, [(0, 1), (0, 2), (0, 3)])
        pruned = prune_redundant_leaves(ctx, star)
        assert pruned == star  # every leaf is a sole label carrier

    def test_prunes_duplicate_carrier(self):
        g = Graph()
        a = g.add_node(labels=["x"])
        b = g.add_node(labels=["y", "x"])
        c = g.add_node(labels=["x"])  # redundant second x
        g.add_edge(a, b, 1.0)
        g.add_edge(b, c, 2.0)
        ctx = ctx_for(g, ["x", "y"])
        tree = SteinerTree([(0, 1, 1.0), (1, 2, 2.0)])
        pruned = prune_redundant_leaves(ctx, tree)
        # Both a and c are removable; pruning both leaves just b, which
        # carries x and y itself.  Pruning must keep feasibility.
        assert pruned.covers(g, ["x", "y"])
        assert pruned.weight <= 1.0

    def test_single_node_untouched(self, path_graph):
        ctx = ctx_for(path_graph, ["x"])
        t = SteinerTree.single_node(0)
        assert prune_redundant_leaves(ctx, t) == t

    def test_collapse_to_single_node(self):
        g = Graph()
        a = g.add_node(labels=["x", "y"])
        b = g.add_node(labels=["x"])
        g.add_edge(a, b, 3.0)
        ctx = ctx_for(g, ["x", "y"])
        tree = SteinerTree([(0, 1, 3.0)])
        pruned = prune_redundant_leaves(ctx, tree)
        assert pruned.nodes == frozenset({0})
        assert pruned.weight == 0.0
