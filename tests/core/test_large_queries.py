"""Larger-k query behaviour (the paper's Fig 16 territory) and misc
robustness: repeated solves, heavy label overlap, route-table limits.
"""

from __future__ import annotations

import pytest

from repro import Graph, QueryError
from repro.core import (
    BasicSolver,
    DPBFSolver,
    PrunedDPPlusPlusSolver,
    PrunedDPPlusSolver,
)
from repro.core.allpaths import MAX_ALLPATHS_LABELS
from repro.graph import generators


class TestLargeK:
    def test_k8_agreement(self):
        g = generators.random_graph(
            25, 50, num_query_labels=8, label_frequency=3, seed=13
        )
        labels = [f"q{i}" for i in range(8)]
        pp = PrunedDPPlusPlusSolver(g, labels).solve()
        dpbf = DPBFSolver(g, labels).solve()
        assert pp.optimal
        assert pp.weight == pytest.approx(dpbf.weight)
        pp.tree.validate(g, labels)

    def test_k10_plusplus(self):
        g = generators.random_graph(
            20, 40, num_query_labels=10, label_frequency=2, seed=14
        )
        labels = [f"q{i}" for i in range(10)]
        pp = PrunedDPPlusPlusSolver(g, labels).solve()
        plus = PrunedDPPlusSolver(g, labels).solve()
        assert pp.optimal and plus.optimal
        assert pp.weight == pytest.approx(plus.weight)
        assert pp.stats.states_popped <= plus.stats.states_popped

    @staticmethod
    def _labelled_star(k):
        """Star with k uniquely-labelled leaves: optimum is the full star.

        Note: NO instance makes k=15 cheap to solve exactly — the
        parameterized DP is Θ(2^k)-ish by nature (the paper's whole
        motivation) — so the beyond-table-limit tests below only check
        the code *paths* (error vs anytime answer), under state caps.
        """
        g = Graph()
        center = g.add_node()
        labels = []
        for i in range(k):
            leaf = g.add_node(labels=[f"q{i}"])
            g.add_edge(center, leaf, 1.0)
            labels.append(f"q{i}")
        return g, labels

    def test_k_beyond_route_table_limit_rejected(self):
        k = MAX_ALLPATHS_LABELS + 1
        g, labels = self._labelled_star(k)
        with pytest.raises(QueryError):
            PrunedDPPlusPlusSolver(g, labels).solve()
        # ...but the bound-free algorithms still produce anytime
        # answers under a state budget.
        result = BasicSolver(g, labels, max_states=3000).solve()
        assert result.tree is not None
        result.tree.validate(g, labels)
        assert result.weight == pytest.approx(k)  # the star is forced

    def test_tour_bounds_disabled_bypasses_limit(self):
        """PrunedDP++ with only the one-label bound has no table cap."""
        k = MAX_ALLPATHS_LABELS + 1
        g, labels = self._labelled_star(k)
        result = PrunedDPPlusPlusSolver(
            g, labels, use_tour1=False, use_tour2=False, max_states=3000
        ).solve()
        assert result.tree is not None
        assert result.weight == pytest.approx(k)


class TestRepeatedSolves:
    def test_solver_is_reusable(self, star_graph):
        solver = PrunedDPPlusPlusSolver(star_graph, ["x", "y", "z"])
        first = solver.solve()
        second = solver.solve()
        assert first.weight == second.weight
        assert first.tree.edges == second.tree.edges
        assert first.stats.states_popped == second.stats.states_popped


class TestHeavyOverlap:
    def test_one_node_carries_every_label(self):
        g = generators.random_graph(
            30, 60, num_query_labels=5, label_frequency=3, seed=16
        )
        hub = 0
        labels = [f"q{i}" for i in range(5)]
        g.add_labels(hub, labels)
        for solver_cls in (BasicSolver, PrunedDPPlusPlusSolver):
            result = solver_cls(g, labels).solve()
            assert result.weight == 0.0
            assert result.tree.nodes == frozenset({hub})

    def test_labels_share_every_group_member(self):
        g = Graph()
        a = g.add_node(labels=["p", "q", "r"])
        b = g.add_node(labels=["p", "q", "r"])
        c = g.add_node()
        g.add_edge(a, c, 1.0)
        g.add_edge(c, b, 1.0)
        result = PrunedDPPlusPlusSolver(g, ["p", "q", "r"]).solve()
        assert result.weight == 0.0

    def test_duplicate_weight_paths(self):
        """Many equal-weight optima: any one is acceptable, weight unique."""
        g = Graph()
        a = g.add_node(labels=["x"])
        b = g.add_node(labels=["y"])
        mids = [g.add_node() for _ in range(4)]
        for mid in mids:
            g.add_edge(a, mid, 1.0)
            g.add_edge(mid, b, 1.0)
        weights = set()
        for solver_cls in (BasicSolver, PrunedDPPlusPlusSolver, DPBFSolver):
            result = solver_cls(g, ["x", "y"]).solve()
            result.tree.validate(g, ["x", "y"])
            weights.add(result.weight)
        assert weights == {2.0}
