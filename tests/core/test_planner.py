"""Algorithm planner tests."""

from __future__ import annotations

import pytest

from repro import Graph, solve_gst
from repro.core.allpaths import MAX_ALLPATHS_LABELS
from repro.core.planner import plan_algorithm
from repro.graph import generators


class TestPlanAlgorithm:
    def test_single_label_uses_basic(self, path_graph):
        name, reason = plan_algorithm(path_graph, ["x"])
        assert name == "basic"
        assert "single-label" in reason

    def test_duplicate_labels_count_once(self, path_graph):
        name, _ = plan_algorithm(path_graph, ["x", "x"])
        assert name == "basic"

    def test_zero_weights_use_basic(self):
        g = Graph()
        a = g.add_node(labels=["x"])
        b = g.add_node(labels=["y"])
        g.add_edge(a, b, 0.0)
        name, reason = plan_algorithm(g, ["x", "y"])
        assert name == "basic"
        assert "Theorem 1" in reason

    def test_normal_query_uses_plusplus(self, star_graph):
        name, _ = plan_algorithm(star_graph, ["x", "y", "z"])
        assert name == "pruneddp++"

    def test_huge_k_uses_plus(self):
        k = MAX_ALLPATHS_LABELS + 2
        g = generators.random_graph(
            30, 60, num_query_labels=k, label_frequency=2, seed=0
        )
        name, reason = plan_algorithm(g, [f"q{i}" for i in range(k)])
        assert name == "pruneddp+"
        assert "table budget" in reason


class TestAutoInFacade:
    def test_auto_solves_correctly(self, star_graph):
        result = solve_gst(star_graph, ["x", "y", "z"], algorithm="auto")
        assert result.optimal
        assert result.weight == pytest.approx(6.0)
        assert result.algorithm == "PrunedDP++"

    def test_auto_zero_weight_fallback(self):
        g = Graph()
        a = g.add_node(labels=["x"])
        b = g.add_node(labels=["y"])
        g.add_edge(a, b, 0.0)
        result = solve_gst(g, ["x", "y"], algorithm="auto")
        assert result.optimal
        assert result.weight == 0.0
        assert result.algorithm == "Basic"

    def test_unknown_still_rejected(self, star_graph):
        with pytest.raises(ValueError):
            solve_gst(star_graph, ["x"], algorithm="automagic")
