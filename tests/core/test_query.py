"""GSTQuery validation and bitmask mapping tests."""

from __future__ import annotations

import pytest

from repro import Graph, GSTQuery, InfeasibleQueryError, QueryError
from repro.core.query import MAX_QUERY_LABELS


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            GSTQuery([])

    def test_duplicates_rejected(self):
        with pytest.raises(QueryError):
            GSTQuery(["a", "a"])

    def test_too_many_labels_rejected(self):
        with pytest.raises(QueryError):
            GSTQuery(range(MAX_QUERY_LABELS + 1))

    def test_max_allowed(self):
        q = GSTQuery(range(MAX_QUERY_LABELS))
        assert q.k == MAX_QUERY_LABELS

    def test_order_preserved(self):
        q = GSTQuery(["b", "a", "c"])
        assert q.labels == ("b", "a", "c")
        assert q.index_of("a") == 1


class TestMasks:
    def test_full_mask(self):
        assert GSTQuery(["a"]).full_mask == 1
        assert GSTQuery(["a", "b", "c"]).full_mask == 7

    def test_mask_of(self):
        q = GSTQuery(["a", "b", "c"])
        assert q.mask_of(["a"]) == 1
        assert q.mask_of(["c", "a"]) == 5
        assert q.mask_of([]) == 0

    def test_mask_of_foreign_label_raises(self):
        with pytest.raises(QueryError):
            GSTQuery(["a"]).mask_of(["z"])

    def test_labels_of_mask(self):
        q = GSTQuery(["a", "b", "c"])
        assert q.labels_of_mask(0b101) == ("a", "c")
        assert q.labels_of_mask(0) == ()

    def test_round_trip(self):
        q = GSTQuery(["p", "q", "r", "s"])
        for mask in range(16):
            assert q.mask_of(q.labels_of_mask(mask)) == mask

    def test_node_mask(self):
        g = Graph()
        v = g.add_node(labels=["a", "c", "other"])
        q = GSTQuery(["a", "b", "c"])
        assert q.node_mask(g, v) == 0b101


class TestGroups:
    def test_groups_built(self, star_graph):
        q = GSTQuery(["x", "y"])
        groups = q.groups(star_graph)
        assert groups == [[1], [2]]

    def test_missing_label_raises_infeasible(self, star_graph):
        with pytest.raises(InfeasibleQueryError):
            GSTQuery(["x", "ghost"]).groups(star_graph)


class TestEquality:
    def test_eq_and_hash(self):
        assert GSTQuery(["a", "b"]) == GSTQuery(["a", "b"])
        assert GSTQuery(["a", "b"]) != GSTQuery(["b", "a"])
        assert hash(GSTQuery(["a"])) == hash(GSTQuery(["a"]))

    def test_repr(self):
        assert "a" in repr(GSTQuery(["a"]))
