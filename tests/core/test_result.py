"""Result/ProgressPoint value-type tests."""

from __future__ import annotations

import pytest

from repro.core.result import GSTResult, ProgressPoint, SearchStats

INF = float("inf")


def make_result(**overrides):
    defaults = dict(
        algorithm="T",
        labels=("a",),
        tree=None,
        weight=10.0,
        lower_bound=5.0,
        optimal=False,
        stats=SearchStats(),
        trace=[],
    )
    defaults.update(overrides)
    return GSTResult(**defaults)


class TestProgressPoint:
    def test_ratio(self):
        assert ProgressPoint(0.0, 10.0, 5.0).ratio == 2.0

    def test_ratio_clamped_at_one(self):
        assert ProgressPoint(0.0, 5.0, 5.0 + 1e-15).ratio == 1.0

    def test_no_feasible_yet(self):
        assert ProgressPoint(0.0, INF, 3.0).ratio == INF

    def test_no_lower_bound_yet(self):
        assert ProgressPoint(0.0, 10.0, 0.0).ratio == INF

    def test_zero_weight_solution(self):
        assert ProgressPoint(0.0, 0.0, 0.0).ratio == 1.0


class TestGSTResult:
    def test_optimal_ratio_is_one(self):
        assert make_result(optimal=True).ratio == 1.0

    def test_nonoptimal_ratio(self):
        assert make_result().ratio == 2.0

    def test_ratio_without_bound(self):
        assert make_result(lower_bound=0.0).ratio == INF

    def test_time_to_ratio(self):
        trace = [
            ProgressPoint(0.1, INF, 2.0),
            ProgressPoint(0.2, 20.0, 4.0),   # ratio 5
            ProgressPoint(0.3, 20.0, 10.0),  # ratio 2
            ProgressPoint(0.4, 10.0, 10.0),  # ratio 1
        ]
        result = make_result(trace=trace, weight=10.0, optimal=True)
        assert result.time_to_ratio(8.0) == pytest.approx(0.2)
        assert result.time_to_ratio(2.0) == pytest.approx(0.3)
        assert result.time_to_ratio(1.0) == pytest.approx(0.4)

    def test_time_to_ratio_unreached(self):
        result = make_result(trace=[ProgressPoint(0.1, 20.0, 4.0)])
        assert result.time_to_ratio(1.0) is None

    def test_repr(self):
        assert "optimal" in repr(make_result(optimal=True))
        assert "ratio<=" in repr(make_result())


class TestSearchStats:
    def test_estimated_bytes_scales_with_states(self):
        small = SearchStats(peak_live_states=10)
        big = SearchStats(peak_live_states=1000)
        assert big.estimated_bytes > small.estimated_bytes

    def test_table_entries_counted(self):
        with_tables = SearchStats(peak_live_states=10, table_entries=1000)
        without = SearchStats(peak_live_states=10)
        assert with_tables.estimated_bytes > without.estimated_bytes
