"""Tests for the solve_gst facade."""

from __future__ import annotations

import pytest

from repro import InfeasibleQueryError, solve_gst
from repro.core.solver import ALGORITHMS, default_algorithm
from repro.graph import generators


class TestAlgorithmSelection:
    def test_default_is_plusplus(self):
        assert default_algorithm() == "pruneddp++"

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_every_algorithm_runs(self, name, path_graph):
        result = solve_gst(path_graph, ["x", "y"], algorithm=name)
        assert result.weight == pytest.approx(3.0)
        assert result.optimal

    def test_case_insensitive(self, path_graph):
        result = solve_gst(path_graph, ["x", "y"], algorithm="PrunedDP++")
        assert result.weight == pytest.approx(3.0)

    def test_unknown_algorithm(self, path_graph):
        with pytest.raises(ValueError):
            solve_gst(path_graph, ["x"], algorithm="magic")


class TestDisconnectedHandling:
    def test_split_components(self, disconnected_graph):
        result = solve_gst(disconnected_graph, ["x", "y"])
        assert result.optimal
        assert result.weight == pytest.approx(5.0)
        # Node ids are translated back to the original graph.
        assert result.tree.nodes == frozenset({2, 3, 4})
        result.tree.validate(disconnected_graph, ["x", "y"])

    def test_no_split_still_correct(self, disconnected_graph):
        result = solve_gst(
            disconnected_graph, ["x", "y"], split_components=False
        )
        assert result.weight == pytest.approx(5.0)

    def test_multiple_covering_components_picks_best(self):
        from repro import Graph

        g = Graph()
        # Component 1: expensive connection.
        a = g.add_node(labels=["x"])
        b = g.add_node(labels=["y"])
        g.add_edge(a, b, 10.0)
        # Component 2: cheap connection.
        c = g.add_node(labels=["x"])
        d = g.add_node(labels=["y"])
        g.add_edge(c, d, 2.0)
        result = solve_gst(g, ["x", "y"])
        assert result.weight == pytest.approx(2.0)
        assert result.tree.nodes == frozenset({c, d})

    def test_infeasible_raises(self, disconnected_graph):
        with pytest.raises(InfeasibleQueryError):
            solve_gst(disconnected_graph, ["x", "y", "nothere"])


class TestKwargsForwarding:
    def test_epsilon_forwarded(self):
        g = generators.random_graph(
            40, 90, num_query_labels=4, label_frequency=4, seed=2
        )
        labels = [f"q{i}" for i in range(4)]
        result = solve_gst(g, labels, epsilon=1.0)
        assert result.ratio <= 2.0 + 1e-9

    def test_on_progress_forwarded(self, path_graph):
        events = []
        solve_gst(path_graph, ["x", "y"], on_progress=events.append)
        assert events

class TestProgressStream:
    def test_on_progress_monotone_ub_lb(self):
        g = generators.random_graph(
            80, 200, num_query_labels=5, label_frequency=4, seed=9
        )
        points = []
        result = solve_gst(
            g, ["q0", "q1", "q2"], algorithm="basic",
            on_progress=points.append,
        )
        assert len(points) >= 2
        for earlier, later in zip(points, points[1:]):
            assert later.best_weight <= earlier.best_weight + 1e-12
            assert later.lower_bound >= earlier.lower_bound - 1e-12
            assert later.elapsed >= earlier.elapsed
        assert points[-1].best_weight == pytest.approx(result.weight)

    def test_dpbf_accepts_on_progress(self, path_graph):
        """Interface parity: the non-progressive tier emits exactly one
        terminal point instead of rejecting the callback."""
        points = []
        result = solve_gst(
            path_graph, ["x", "y"], algorithm="dpbf",
            on_progress=points.append,
        )
        assert len(points) == 1
        assert points[0].best_weight == pytest.approx(result.weight)
