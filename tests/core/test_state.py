"""StateStore and bit-iteration tests."""

from __future__ import annotations

import pytest

from repro.core.state import StateStore, iter_bits, popcount


class TestBitHelpers:
    def test_iter_bits(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(1)) == [0]
        assert list(iter_bits(0b1011)) == [0, 1, 3]

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 20) - 1) == 20


class TestStateStore:
    def test_settle_and_lookup(self):
        store = StateStore(4)
        store.settle(2, 0b01, 3.0, ("seed", 0))
        assert store.contains(2, 0b01)
        assert not store.contains(2, 0b10)
        assert store.cost(2, 0b01) == 3.0
        assert store.cost_or_none(2, 0b10) is None
        assert store.backpointer(2, 0b01) == ("seed", 0)
        assert len(store) == 1

    def test_masks_at(self):
        store = StateStore(3)
        store.settle(1, 0b01, 1.0, ("seed", 0))
        store.settle(1, 0b10, 2.0, ("seed", 1))
        store.settle(2, 0b01, 3.0, ("seed", 0))
        assert store.masks_at(1) == {0b01: 1.0, 0b10: 2.0}

    def test_reopen(self):
        store = StateStore(2)
        store.settle(0, 1, 1.0, ("seed", 0))
        store.reopen(0, 1)
        assert not store.contains(0, 1)
        assert len(store) == 0
        store.reopen(0, 1)  # idempotent

    def test_peak_size(self):
        store = StateStore(2)
        store.settle(0, 1, 1.0, ("seed", 0))
        store.settle(1, 1, 1.0, ("seed", 0))
        store.reopen(0, 1)
        assert len(store) == 1
        assert store.peak_size == 2

    def test_missing_cost_raises(self):
        with pytest.raises(KeyError):
            StateStore(1).cost(0, 1)


class TestTreeReconstruction:
    def test_seed_state_has_no_edges(self):
        store = StateStore(1)
        store.settle(0, 1, 0.0, ("seed", 0))
        assert store.tree_edges(0, 1) == []

    def test_grow_chain(self):
        # (2,{0}) grown from (1,{0}) grown from (0,{0}).
        store = StateStore(3)
        store.settle(0, 1, 0.0, ("seed", 0))
        store.settle(1, 1, 2.0, ("grow", 0, 2.0))
        store.settle(2, 1, 5.0, ("grow", 1, 3.0))
        edges = sorted(store.tree_edges(2, 1))
        assert edges == [(1, 0, 2.0), (2, 1, 3.0)]

    def test_merge(self):
        store = StateStore(3)
        store.settle(0, 0b01, 0.0, ("seed", 0))
        store.settle(1, 0b01, 1.0, ("grow", 0, 1.0))
        store.settle(2, 0b10, 0.0, ("seed", 1))
        store.settle(1, 0b10, 4.0, ("grow", 2, 4.0))
        store.settle(1, 0b11, 5.0, ("merge", 0b01, 0b10))
        edges = sorted(store.tree_edges(1, 0b11))
        assert edges == [(1, 0, 1.0), (1, 2, 4.0)]

    def test_override_for_pending_state(self):
        store = StateStore(2)
        store.settle(0, 1, 0.0, ("seed", 0))
        # Pending state (1, 1) derived by growing — not settled yet.
        edges = store.tree_edges(1, 1, override=(1, 1, ("grow", 0, 7.0)))
        assert edges == [(1, 0, 7.0)]

    def test_unknown_backpointer_kind(self):
        store = StateStore(1)
        store.settle(0, 1, 0.0, ("banana",))
        with pytest.raises(ValueError):
            store.tree_edges(0, 1)


class TestReopenSettleInteraction:
    """Reopening a settled state must fully retire its derivation.

    The engine reopens a settled ``(node, mask)`` when a strictly
    cheaper derivation appears (the exactness safety net); the state is
    later re-settled with a *new* backpointer.  Tree reconstruction
    through that state must follow the new chain — resurrecting the
    stale one would rebuild a tree that no longer matches the cost.
    """

    def test_resettle_replaces_backpointer_chain(self):
        store = StateStore(3)
        # Stale derivation: (0,{0}) grown from (1,{0}) grown from seed (2,{0}).
        store.settle(2, 1, 0.0, ("seed", 0))
        store.settle(1, 1, 5.0, ("grow", 2, 5.0))
        store.settle(0, 1, 9.0, ("grow", 1, 4.0))
        assert sorted(store.tree_edges(0, 1)) == [(0, 1, 4.0), (1, 2, 5.0)]
        # A cheaper derivation reaches (1,{0}): reopen, then re-settle
        # as a seed.  The old grow-from-2 chain must be gone.
        store.reopen(1, 1)
        assert not store.contains(1, 1)
        with pytest.raises(KeyError):
            store.backpointer(1, 1)
        store.settle(1, 1, 0.0, ("seed", 0))
        assert store.cost(1, 1) == 0.0
        assert store.tree_edges(1, 1) == []
        assert store.tree_edges(0, 1) == [(0, 1, 4.0)]

    def test_resettle_at_higher_cost_uses_new_chain(self):
        # Re-settling at a *higher* cost (possible while the safety net
        # churns) must likewise not resurrect the stale chain.
        store = StateStore(4)
        store.settle(3, 1, 0.0, ("seed", 0))
        store.settle(2, 1, 1.0, ("grow", 3, 1.0))
        store.reopen(2, 1)
        store.settle(0, 1, 0.0, ("seed", 0))
        store.settle(2, 1, 7.0, ("grow", 0, 7.0))
        assert store.cost(2, 1) == 7.0
        assert store.tree_edges(2, 1) == [(2, 0, 7.0)]

    def test_reopened_parent_breaks_descendant_reconstruction(self):
        # A descendant pointing at a reopened-and-never-resettled parent
        # must fail loudly (KeyError), not silently rebuild a stale tree.
        store = StateStore(2)
        store.settle(1, 1, 0.0, ("seed", 0))
        store.settle(0, 1, 2.0, ("grow", 1, 2.0))
        store.reopen(1, 1)
        with pytest.raises(KeyError):
            store.tree_edges(0, 1)

    def test_merge_reconstruction_after_part_resettle(self):
        store = StateStore(2)
        store.settle(0, 0b01, 3.0, ("grow", 1, 3.0))
        store.settle(1, 0b01, 0.0, ("seed", 0))
        store.settle(0, 0b10, 0.0, ("seed", 1))
        store.settle(0, 0b11, 3.0, ("merge", 0b01, 0b10))
        assert sorted(store.tree_edges(0, 0b11)) == [(0, 1, 3.0)]
        # The merge part (0,{0}) is reopened and re-settled as a seed;
        # the merged state's tree must now be edge-free.
        store.reopen(0, 0b01)
        store.settle(0, 0b01, 0.0, ("seed", 0))
        assert store.tree_edges(0, 0b11) == []

    def test_size_accounting_over_reopen_cycles(self):
        store = StateStore(2)
        for _ in range(3):
            store.settle(0, 1, 1.0, ("seed", 0))
            assert len(store) == 1
            store.reopen(0, 1)
            assert len(store) == 0
        assert store.peak_size == 1
