"""Classic (terminal) Steiner tree reduction tests."""

from __future__ import annotations

import networkx as nx
import pytest

from repro import QueryError
from repro.core import steiner_tree, steiner_tree_weight
from repro.graph import generators


class TestSteinerTree:
    def test_two_terminals_is_shortest_path(self, diamond_graph):
        result = steiner_tree(diamond_graph, [0, 3])
        assert result.optimal
        assert result.weight == pytest.approx(2.0)

    def test_single_terminal(self, path_graph):
        result = steiner_tree(path_graph, [1])
        assert result.weight == 0.0
        assert result.tree.nodes == frozenset({1})

    def test_duplicates_collapsed(self, path_graph):
        result = steiner_tree(path_graph, [0, 0, 2, 2])
        assert result.weight == pytest.approx(3.0)

    def test_empty_terminals_rejected(self, path_graph):
        with pytest.raises(QueryError):
            steiner_tree(path_graph, [])

    def test_steiner_node_used(self, star_graph):
        result = steiner_tree(star_graph, [1, 2, 3])
        assert result.weight == pytest.approx(6.0)
        assert 0 in result.tree.nodes  # hub is a non-terminal

    def test_original_graph_unmodified(self, path_graph):
        before = [path_graph.labels_of(v) for v in path_graph.nodes()]
        steiner_tree(path_graph, [0, 2])
        after = [path_graph.labels_of(v) for v in path_graph.nodes()]
        assert before == after

    def test_labels_report_terminals(self, path_graph):
        result = steiner_tree(path_graph, [0, 2])
        assert result.labels == (0, 2)

    def test_matches_networkx_approximation_bound(self):
        """networkx's Steiner approximation is never better than our
        exact answer and at most 2x worse (its guarantee)."""
        from networkx.algorithms.approximation import steiner_tree as nx_steiner

        for seed in range(5):
            g = generators.random_graph(20, 45, seed=seed)
            nxg = nx.Graph()
            for u, v, w in g.edges():
                nxg.add_edge(u, v, weight=w)
            terminals = [1, 5, 11, 17]
            exact = steiner_tree_weight(g, terminals)
            approx_tree = nx_steiner(nxg, terminals, weight="weight")
            approx = sum(d["weight"] for _, _, d in approx_tree.edges(data=True))
            assert exact <= approx + 1e-9
            assert approx <= 2.0 * exact + 1e-9

    def test_all_algorithms_agree(self, star_graph):
        weights = {
            steiner_tree(star_graph, [1, 2, 3], algorithm=name).weight
            for name in ("basic", "pruneddp", "pruneddp++", "dpbf")
        }
        assert len(weights) == 1

    def test_invalid_terminal_rejected(self, path_graph):
        from repro import GraphError

        with pytest.raises(GraphError):
            steiner_tree(path_graph, [99])
