"""Approximate top-r tests (paper Section 4.2 remark)."""

from __future__ import annotations

import pytest

from repro import Graph
from repro.core import BasicSolver, PrunedDPPlusPlusSolver, top_r_trees
from repro.graph import generators


class TestTopR:
    def test_r_must_be_positive(self, path_graph):
        with pytest.raises(ValueError):
            top_r_trees(path_graph, ["x", "y"], 0)

    def test_top1_is_optimum(self, diamond_graph):
        trees = top_r_trees(diamond_graph, ["x", "y"], 1)
        assert len(trees) == 1
        assert trees[0].weight == pytest.approx(2.0)

    def test_results_sorted_and_distinct(self):
        g = generators.random_graph(
            30, 70, num_query_labels=3, label_frequency=4, seed=12
        )
        labels = ["q0", "q1", "q2"]
        trees = top_r_trees(g, labels, 5)
        assert 1 <= len(trees) <= 5
        weights = [t.weight for t in trees]
        assert weights == sorted(weights)
        assert len({(t.edges, t.nodes) for t in trees}) == len(trees)
        for tree in trees:
            tree.validate(g, labels)

    def test_diamond_finds_near_optimal_alternative(self):
        """Two routes of similar weight: both are reported.

        (A *much* heavier alternative would be pruned against the
        incumbent before its tree is ever materialized — the paper's
        top-r remark only promises the near-optimal solutions seen
        during the search.)
        """
        g = Graph()
        a = g.add_node(labels=["x"])
        m1 = g.add_node()
        m2 = g.add_node()
        d = g.add_node(labels=["y"])
        g.add_edge(a, m1, 1.0)
        g.add_edge(m1, d, 1.0)
        g.add_edge(a, m2, 1.1)
        g.add_edge(m2, d, 1.1)
        trees = top_r_trees(g, ["x", "y"], 3, solver_cls=BasicSolver)
        weights = sorted(t.weight for t in trees)
        assert weights[0] == pytest.approx(2.0)
        assert any(w == pytest.approx(2.2) for w in weights)

    def test_all_trees_cover_query(self):
        g = generators.dblp_like(
            num_papers=80, num_authors=50,
            num_query_labels=8, label_frequency=4, seed=1,
        )
        labels = ["q0", "q1", "q2", "q3"]
        trees = top_r_trees(g, labels, 4, solver_cls=PrunedDPPlusPlusSolver)
        for tree in trees:
            assert tree.covers(g, labels)

    def test_solver_kwargs_forwarded(self, diamond_graph):
        trees = top_r_trees(
            diamond_graph, ["x", "y"], 2, max_states=10_000
        )
        assert trees
