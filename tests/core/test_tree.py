"""SteinerTree value-object tests."""

from __future__ import annotations

import pytest

from repro import Graph, GraphError, SteinerTree


class TestConstruction:
    def test_single_node(self):
        t = SteinerTree.single_node(7)
        assert t.weight == 0.0
        assert t.nodes == frozenset({7})
        assert t.edges == ()
        assert t.num_edges == 0

    def test_edges_normalized_and_sorted(self):
        t = SteinerTree([(3, 1, 2.0), (1, 0, 1.0)])
        assert t.edges == ((0, 1, 1.0), (1, 3, 2.0))
        assert t.weight == 3.0
        assert t.nodes == frozenset({0, 1, 3})

    def test_empty_without_nodes_rejected(self):
        with pytest.raises(ValueError):
            SteinerTree([])

    def test_from_edge_pairs(self, path_graph):
        t = SteinerTree.from_edge_pairs(path_graph, [(0, 1), (1, 2)])
        assert t.weight == 3.0


class TestQueries:
    def test_covers(self, path_graph):
        t = SteinerTree.from_edge_pairs(path_graph, [(0, 1), (1, 2)])
        assert t.covers(path_graph, ["x", "y"])
        assert not t.covers(path_graph, ["x", "ghost"])
        assert t.covers(path_graph, [])

    def test_degree_map(self):
        t = SteinerTree([(0, 1, 1.0), (1, 2, 1.0)])
        assert t.degree_map() == {0: 1, 1: 2, 2: 1}

    def test_equality_and_hash(self):
        a = SteinerTree([(0, 1, 1.0)])
        b = SteinerTree([(1, 0, 1.0)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != SteinerTree([(0, 1, 2.0)])
        assert a != SteinerTree.single_node(0)


class TestValidate:
    def test_valid_tree_passes(self, path_graph):
        t = SteinerTree.from_edge_pairs(path_graph, [(0, 1), (1, 2)])
        t.validate(path_graph, ["x", "y"])

    def test_missing_edge_rejected(self, path_graph):
        t = SteinerTree([(0, 2, 1.0)])
        with pytest.raises(GraphError):
            t.validate(path_graph)

    def test_wrong_weight_rejected(self, path_graph):
        t = SteinerTree([(0, 1, 99.0)])
        with pytest.raises(GraphError):
            t.validate(path_graph)

    def test_cycle_rejected(self, star_graph):
        t = SteinerTree([(0, 1, 1.0), (0, 2, 2.0), (1, 2, 10.0)])
        with pytest.raises(GraphError):
            t.validate(star_graph)

    def test_uncovered_label_rejected(self, path_graph):
        t = SteinerTree([(0, 1, 1.0)])
        with pytest.raises(GraphError) as err:
            t.validate(path_graph, ["x", "y"])
        assert "y" in str(err.value)

    def test_single_node_coverage(self):
        g = Graph()
        v = g.add_node(labels=["a", "b"])
        SteinerTree.single_node(v).validate(g, ["a", "b"])


class TestRender:
    def test_single_node_render(self, path_graph):
        out = SteinerTree.single_node(0).render(path_graph)
        assert out.startswith("*")
        assert "a" in out

    def test_tree_render_contains_all_nodes(self, star_graph):
        t = SteinerTree.from_edge_pairs(star_graph, [(0, 1), (0, 2), (0, 3)])
        out = t.render(star_graph)
        for name in ("h", "a", "b", "c"):
            assert name in out
        # Root is the hub (highest degree).
        assert out.splitlines()[0].startswith("* h")

    def test_render_explicit_root(self, star_graph):
        t = SteinerTree.from_edge_pairs(star_graph, [(0, 1), (0, 2)])
        out = t.render(star_graph, root=1)
        assert out.splitlines()[0].startswith("* a")

    def test_repr(self):
        assert "weight=1" in repr(SteinerTree([(0, 1, 1.0)]))


class TestToDot:
    def test_dot_structure(self, star_graph):
        t = SteinerTree.from_edge_pairs(star_graph, [(0, 1), (0, 2)])
        dot = t.to_dot(star_graph)
        assert dot.startswith("graph gst {")
        assert dot.rstrip().endswith("}")
        assert 'n0 -- n1 [label="1"]' in dot
        assert 'n0 -- n2 [label="2"]' in dot

    def test_dot_uses_names_and_labels(self, star_graph):
        t = SteinerTree.from_edge_pairs(star_graph, [(0, 1)])
        dot = t.to_dot(star_graph, name="answer")
        assert "graph answer {" in dot
        assert '"a' in dot  # node name
        assert "x" in dot   # node label

    def test_dot_single_node(self, path_graph):
        dot = SteinerTree.single_node(0).to_dot(path_graph)
        assert "n0" in dot
        assert "--" not in dot
