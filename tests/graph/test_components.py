"""Connectivity helper tests."""

from __future__ import annotations

from repro import Graph
from repro.graph.components import (
    component_covering_labels,
    component_ids,
    components_covering_labels,
    connected_components,
    is_connected,
)


def two_component_graph():
    g = Graph()
    a = g.add_node(labels=["x"])
    b = g.add_node(labels=["y"])
    g.add_edge(a, b, 1.0)
    c = g.add_node(labels=["x"])
    d = g.add_node(labels=["z"])
    g.add_edge(c, d, 1.0)
    return g


class TestComponents:
    def test_empty_graph(self):
        g = Graph()
        assert connected_components(g) == []
        assert is_connected(g)

    def test_single_node(self):
        g = Graph()
        g.add_node()
        assert connected_components(g) == [[0]]
        assert is_connected(g)

    def test_two_components(self):
        g = two_component_graph()
        comps = connected_components(g)
        assert sorted(map(sorted, comps)) == [[0, 1], [2, 3]]
        assert not is_connected(g)

    def test_component_ids_consistent(self):
        g = two_component_graph()
        ids = component_ids(g)
        assert ids[0] == ids[1]
        assert ids[2] == ids[3]
        assert ids[0] != ids[2]

    def test_isolated_nodes_are_components(self):
        g = Graph()
        g.add_node()
        g.add_node()
        assert len(connected_components(g)) == 2


class TestCoveringComponent:
    def test_finds_covering_component(self):
        g = two_component_graph()
        nodes = component_covering_labels(g, ["x", "y"])
        assert sorted(nodes) == [0, 1]
        nodes = component_covering_labels(g, ["x", "z"])
        assert sorted(nodes) == [2, 3]

    def test_none_when_labels_split(self):
        g = two_component_graph()
        assert component_covering_labels(g, ["y", "z"]) is None

    def test_none_for_unknown_label(self):
        g = two_component_graph()
        assert component_covering_labels(g, ["nope"]) is None

    def test_none_for_empty_labels(self):
        g = two_component_graph()
        assert component_covering_labels(g, []) is None

    def test_multiple_covering_components(self):
        g = two_component_graph()
        comps = components_covering_labels(g, ["x"])
        assert sorted(map(sorted, comps)) == [[0, 1], [2, 3]]

    def test_components_covering_none(self):
        g = two_component_graph()
        assert components_covering_labels(g, ["y", "z"]) == []

    def test_smallest_component_preferred(self):
        g = Graph()
        # Big component with label x.
        nodes = [g.add_node(labels=["x"]) for _ in range(5)]
        for u, v in zip(nodes, nodes[1:]):
            g.add_edge(u, v, 1.0)
        # Small component with label x.
        a = g.add_node(labels=["x"])
        b = g.add_node()
        g.add_edge(a, b, 1.0)
        chosen = component_covering_labels(g, ["x"])
        assert sorted(chosen) == [5, 6]
