"""Units for the CSR snapshot layer (`repro.graph.csr`) and satellites:

* ``Graph.freeze`` / ``Graph.snapshot`` lifecycle and invalidation,
* CSR buffer shape/content against the source graph,
* the integer-weight Dial fast lane and its ``MAX_DIAL_WEIGHT`` cutoff,
* the O(1) duplicate-edge collapse rule (parallel edges keep the
  lighter weight — pinned here so the edge-position index can never
  silently change it),
* :class:`~repro.errors.NodeRangeError` typing on kernel source checks.
"""

from __future__ import annotations

import pytest

from repro.errors import GraphError, NodeRangeError
from repro.graph.csr import CSRGraph, MAX_DIAL_WEIGHT
from repro.graph.graph import Graph
from repro.graph.shortest_paths import (
    dijkstra,
    dijkstra_csr,
    label_enhanced_distances_csr,
    label_enhanced_distances_legacy,
    multi_source_dijkstra,
    multi_source_dijkstra_csr,
)


def path_graph(weights, labels=()):
    """0 - 1 - ... - n with the given edge weights."""
    graph = Graph()
    for _ in range(len(weights) + 1):
        graph.add_node()
    for i, w in enumerate(weights):
        graph.add_edge(i, i + 1, w)
    for node, label in labels:
        graph.add_labels(node, [label])
    return graph


class TestFreezeLifecycle:
    def test_freeze_returns_cached_snapshot(self):
        graph = path_graph([1.0, 2.0])
        first = graph.freeze()
        assert isinstance(first, CSRGraph)
        assert graph.freeze() is first
        assert graph.snapshot() is first

    def test_unfrozen_graph_has_no_snapshot(self):
        assert path_graph([1.0]).snapshot() is None

    def test_add_node_invalidates(self):
        graph = path_graph([1.0])
        graph.freeze()
        graph.add_node()
        assert graph.snapshot() is None

    def test_add_edge_invalidates(self):
        graph = path_graph([1.0])
        graph.add_node()
        graph.freeze()
        graph.add_edge(1, 2, 3.0)
        assert graph.snapshot() is None

    def test_duplicate_edge_with_lighter_weight_invalidates(self):
        graph = path_graph([5.0])
        graph.freeze()
        graph.add_edge(0, 1, 2.0)  # weight actually changes
        assert graph.snapshot() is None

    def test_duplicate_edge_with_heavier_weight_keeps_snapshot(self):
        graph = path_graph([2.0])
        snapshot = graph.freeze()
        graph.add_edge(0, 1, 9.0)  # no-op by the min-weight rule
        assert graph.snapshot() is snapshot

    def test_add_labels_invalidates_only_on_new_label(self):
        graph = path_graph([1.0], labels=[(0, "a")])
        snapshot = graph.freeze()
        graph.add_labels(0, ["a"])  # already present: no mutation
        assert graph.snapshot() is snapshot
        graph.add_labels(1, ["b"])
        assert graph.snapshot() is None

    def test_copy_starts_unfrozen(self):
        graph = path_graph([1.0])
        graph.freeze()
        clone = graph.copy()
        assert clone.snapshot() is None
        assert graph.snapshot() is not None


class TestCSRBuffers:
    def test_buffers_mirror_adjacency(self):
        graph = path_graph([1.0, 2.0, 4.0])
        csr = graph.freeze()
        assert csr.num_nodes == 4
        assert csr.num_edges == 3
        assert list(csr.indptr) == [0, 1, 3, 5, 6]
        # Each undirected edge appears once per endpoint.
        assert len(csr.indices) == 2 * csr.num_edges
        assert len(csr.weights) == 2 * csr.num_edges
        for u in range(csr.num_nodes):
            start, end = csr.indptr[u], csr.indptr[u + 1]
            flat = list(zip(csr.indices[start:end], csr.weights[start:end]))
            assert flat == list(csr.adjacency[u])
            assert csr.degree(u) == end - start

    def test_label_members_captured(self):
        graph = path_graph([1.0, 1.0], labels=[(0, "a"), (2, "a"), (1, "b")])
        csr = graph.freeze()
        assert csr.members("a") == (0, 2)
        assert csr.members("b") == (1,)
        assert csr.members("missing") == ()
        assert csr.num_labels == 2
        assert set(csr.all_labels()) == {"a", "b"}

    def test_fingerprint_stable_and_structure_sensitive(self):
        one = path_graph([1.0, 2.0]).freeze()
        two = path_graph([1.0, 2.0]).freeze()
        other = path_graph([1.0, 3.0]).freeze()
        assert one.fingerprint == two.fingerprint
        assert one.fingerprint != other.fingerprint

    def test_info_is_json_safe_summary(self):
        info = path_graph([1.0]).freeze().info()
        assert info["num_nodes"] == 2
        assert info["num_edges"] == 1
        assert info["integer_weights"] is True


class TestDialLane:
    def test_small_integer_weights_take_dial(self):
        csr = path_graph([1.0, 2.0, float(MAX_DIAL_WEIGHT)]).freeze()
        assert csr.integer_weights
        assert csr.int_adjacency is not None
        assert csr.max_int_weight == MAX_DIAL_WEIGHT

    def test_float_weights_fall_back_to_heap(self):
        csr = path_graph([1.5, 2.0]).freeze()
        assert not csr.integer_weights
        assert csr.int_adjacency is None

    def test_large_integer_weights_fall_back_to_heap(self):
        csr = path_graph([1.0, float(MAX_DIAL_WEIGHT + 1)]).freeze()
        assert not csr.integer_weights

    def test_dial_and_heap_agree_with_zero_weight_edges(self):
        graph = path_graph([0.0, 1.0, 0.0, 2.0])
        csr = graph.freeze()
        assert csr.integer_weights
        dist, parent = dijkstra_csr(csr, 0)
        assert dist == [0.0, 0.0, 1.0, 1.0, 3.0]
        legacy_dist, _ = dijkstra(path_graph([0.0, 1.0, 0.0, 2.0]), 0)
        assert dist == legacy_dist

    def test_label_enhanced_csr_matches_legacy(self):
        graph = path_graph(
            [1.0, 2.0, 1.0, 1.0],
            labels=[(0, "a"), (4, "a"), (2, "b"), (3, "c")],
        )
        groups = [[0, 4], [2], [3]]
        expected = label_enhanced_distances_legacy(graph, groups)
        assert label_enhanced_distances_csr(graph.freeze(), groups) == expected


class TestDispatch:
    def test_frozen_graph_routes_to_csr(self):
        graph = path_graph([1.0, 2.0])
        legacy_dist, _ = multi_source_dijkstra(graph, [0])
        graph.freeze()
        csr_dist, _ = multi_source_dijkstra(graph, [0])
        assert legacy_dist == csr_dist

    def test_targets_early_exit_matches(self):
        graph = path_graph([1.0, 1.0, 1.0, 1.0])
        legacy_dist, _ = multi_source_dijkstra(graph, [0], targets=[2])
        graph.freeze()
        csr_dist, _ = multi_source_dijkstra(graph, [0], targets=[2])
        assert csr_dist[2] == legacy_dist[2] == 2.0


class TestNodeRangeError:
    def test_legacy_sources_raise_typed_error(self):
        graph = path_graph([1.0])
        with pytest.raises(NodeRangeError):
            multi_source_dijkstra(graph, [5])

    def test_csr_sources_raise_typed_error(self):
        csr = path_graph([1.0]).freeze()
        with pytest.raises(NodeRangeError):
            multi_source_dijkstra_csr(csr, [-1])

    def test_subclasses_both_hierarchies(self):
        graph = path_graph([1.0])
        # Callers that historically caught IndexError keep working...
        with pytest.raises(IndexError):
            dijkstra(graph, 99)
        # ...and so do callers catching the package hierarchy.
        with pytest.raises(GraphError):
            dijkstra(graph, 99)


class TestDuplicateEdgeCollapse:
    """Pin the O(1) parallel-edge rule: lighter weight always wins."""

    def test_lighter_duplicate_replaces(self):
        graph = path_graph([5.0])
        graph.add_edge(0, 1, 2.0)
        assert graph.num_edges == 1
        assert graph.edge_weight(0, 1) == 2.0
        assert graph.edge_weight(1, 0) == 2.0
        assert graph.total_weight == 2.0

    def test_heavier_duplicate_is_ignored(self):
        graph = path_graph([2.0])
        graph.add_edge(1, 0, 7.0)
        assert graph.num_edges == 1
        assert graph.edge_weight(0, 1) == 2.0
        assert graph.total_weight == 2.0

    def test_equal_duplicate_is_ignored(self):
        graph = path_graph([2.0])
        graph.add_edge(0, 1, 2.0)
        assert graph.num_edges == 1
        assert graph.total_weight == 2.0

    def test_collapse_keeps_validate_happy(self):
        graph = path_graph([3.0, 4.0])
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(2, 1, 9.0)
        graph.validate()
