"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.components import is_connected


class TestRandomGraph:
    def test_connected_by_default(self):
        g = generators.random_graph(30, 50, seed=0)
        assert is_connected(g)
        assert g.num_nodes == 30
        assert g.num_edges >= 29
        g.validate()

    def test_deterministic(self):
        g1 = generators.random_graph(20, 40, seed=5)
        g2 = generators.random_graph(20, 40, seed=5)
        assert list(g1.edges()) == list(g2.edges())
        assert [g1.labels_of(v) for v in g1.nodes()] == [
            g2.labels_of(v) for v in g2.nodes()
        ]

    def test_different_seeds_differ(self):
        g1 = generators.random_graph(20, 40, seed=1)
        g2 = generators.random_graph(20, 40, seed=2)
        assert list(g1.edges()) != list(g2.edges())

    def test_query_labels_attached(self):
        g = generators.random_graph(
            30, 50, num_query_labels=4, label_frequency=5, seed=0
        )
        for i in range(4):
            assert g.label_frequency(f"q{i}") == 5

    def test_weights_in_range(self):
        g = generators.random_graph(15, 30, weight_range=(2.0, 3.0), seed=0)
        for _, _, w in g.edges():
            assert 2.0 <= w <= 3.0

    def test_disconnected_allowed(self):
        g = generators.random_graph(30, 3, connected=False, seed=0)
        assert g.num_edges <= 3


class TestDblpLike:
    def test_structure(self):
        g = generators.dblp_like(num_papers=80, num_authors=50, seed=0)
        assert g.num_nodes == 130
        assert is_connected(g)
        g.validate()
        papers = g.nodes_with_label("kind:paper")
        authors = g.nodes_with_label("kind:author")
        assert len(papers) == 80
        assert len(authors) == 50

    def test_author_name_labels(self):
        g = generators.dblp_like(num_papers=20, num_authors=10, seed=0)
        assert g.label_frequency("author:0") == 1

    def test_query_pool_frequency(self):
        g = generators.dblp_like(
            num_papers=60, num_authors=40,
            num_query_labels=8, label_frequency=6, seed=1,
        )
        for i in range(8):
            assert g.label_frequency(f"q{i}") == 6

    def test_deterministic(self):
        a = generators.dblp_like(num_papers=40, num_authors=30, seed=3)
        b = generators.dblp_like(num_papers=40, num_authors=30, seed=3)
        assert list(a.edges()) == list(b.edges())


class TestImdbLike:
    def test_structure(self):
        g = generators.imdb_like(num_movies=70, num_people=40, seed=0)
        assert g.num_nodes == 110
        assert is_connected(g)
        g.validate()

    def test_preferential_reuse_creates_hubs(self):
        g = generators.imdb_like(num_movies=300, num_people=120, seed=0)
        people = g.nodes_with_label("kind:person")
        degrees = sorted((g.degree(p) for p in people), reverse=True)
        # Heavy tail: the busiest person far exceeds the median person.
        median = degrees[len(degrees) // 2]
        assert degrees[0] >= max(4, 3 * max(median, 1))


class TestPowerlaw:
    def test_structure(self):
        g = generators.powerlaw(200, edges_per_node=3, seed=0)
        assert g.num_nodes == 200
        assert is_connected(g)
        g.validate()

    def test_heavy_tailed_degrees(self):
        g = generators.powerlaw(500, edges_per_node=3, seed=1)
        degrees = sorted((g.degree(v) for v in g.nodes()), reverse=True)
        assert degrees[0] > 10 * degrees[len(degrees) // 2] / 3

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            generators.powerlaw(3, edges_per_node=3)


class TestRoadGrid:
    def test_structure(self):
        g = generators.road_grid(8, 9, seed=0)
        assert g.num_nodes == 72
        assert is_connected(g)
        g.validate()

    def test_degree_bounded(self):
        g = generators.road_grid(10, 10, diagonal_probability=0.0, seed=0)
        assert max(g.degree(v) for v in g.nodes()) <= 4

    def test_large_diameter_vs_powerlaw(self):
        """The road topology has a far larger diameter — the structural
        contrast driving paper Figs 14 vs 15."""

        road = generators.road_grid(12, 12, seed=0)
        power = generators.powerlaw(144, edges_per_node=3, seed=0)

        def hop_eccentricity(graph):
            # unweighted eccentricity from node 0
            dist = [-1] * graph.num_nodes
            dist[0] = 0
            frontier = [0]
            while frontier:
                nxt = []
                for u in frontier:
                    for v, _ in graph.neighbors(u):
                        if dist[v] < 0:
                            dist[v] = dist[u] + 1
                            nxt.append(v)
                frontier = nxt
            return max(dist)

        assert hop_eccentricity(road) > 2 * hop_eccentricity(power)


class TestAttachQueryLabels:
    def test_restricted_node_set(self):
        import random

        g = generators.random_graph(20, 30, num_query_labels=0, seed=0)
        rng = random.Random(0)
        generators.attach_query_labels(g, 2, 3, rng, nodes=range(5))
        for i in range(2):
            members = g.nodes_with_label(f"q{i}")
            assert len(members) == 3
            assert all(m < 5 for m in members)

    def test_frequency_capped_at_population(self):
        import random

        g = generators.random_graph(4, 4, num_query_labels=0, seed=0)
        generators.attach_query_labels(g, 1, 100, random.Random(0))
        assert g.label_frequency("q0") == 4

    def test_empty_nodes_raises(self):
        import random

        from repro.graph.graph import Graph

        with pytest.raises(ValueError):
            generators.attach_query_labels(Graph(), 1, 2, random.Random(0))
