"""Tests for the core Graph container."""

from __future__ import annotations

import pytest

from repro import Graph, GraphError


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.num_labels == 0
        assert g.min_edge_weight == float("inf")

    def test_add_node_returns_dense_ids(self):
        g = Graph()
        assert [g.add_node() for _ in range(4)] == [0, 1, 2, 3]

    def test_add_node_with_labels(self):
        g = Graph()
        v = g.add_node(labels=["a", "b"])
        assert g.labels_of(v) == frozenset({"a", "b"})
        assert list(g.nodes_with_label("a")) == [v]
        assert g.label_frequency("a") == 1
        assert g.label_frequency("missing") == 0

    def test_add_labels_later(self):
        g = Graph()
        v = g.add_node(labels=["a"])
        g.add_labels(v, ["b", "a"])
        assert g.labels_of(v) == frozenset({"a", "b"})
        assert g.label_frequency("b") == 1
        # Re-adding is a no-op, not a duplicate group entry.
        g.add_labels(v, ["b"])
        assert g.label_frequency("b") == 1

    def test_add_edge(self):
        g = Graph()
        a, b = g.add_node(), g.add_node()
        g.add_edge(a, b, 2.5)
        assert g.num_edges == 1
        assert g.edge_weight(a, b) == 2.5
        assert g.edge_weight(b, a) == 2.5
        assert g.has_edge(a, b)
        assert g.total_weight == 2.5
        assert g.min_edge_weight == 2.5

    def test_parallel_edges_keep_minimum(self):
        g = Graph()
        a, b = g.add_node(), g.add_node()
        g.add_edge(a, b, 5.0)
        g.add_edge(a, b, 2.0)
        g.add_edge(a, b, 9.0)
        assert g.num_edges == 1
        assert g.edge_weight(a, b) == 2.0
        assert g.total_weight == 2.0

    def test_self_loop_rejected(self):
        g = Graph()
        a = g.add_node()
        with pytest.raises(GraphError):
            g.add_edge(a, a, 1.0)

    def test_bad_weights_rejected(self):
        g = Graph()
        a, b = g.add_node(), g.add_node()
        for bad in (-1.0, float("inf"), float("nan")):
            with pytest.raises(GraphError):
                g.add_edge(a, b, bad)

    def test_zero_weight_allowed(self):
        g = Graph()
        a, b = g.add_node(), g.add_node()
        g.add_edge(a, b, 0.0)
        assert g.min_edge_weight == 0.0

    def test_invalid_node_id(self):
        g = Graph()
        g.add_node()
        with pytest.raises(GraphError):
            g.neighbors(5)
        with pytest.raises(GraphError):
            g.add_edge(0, 7)
        with pytest.raises(GraphError):
            g.labels_of(-1)


class TestAccessors:
    def test_edges_iterates_once_per_edge(self):
        g = Graph()
        nodes = [g.add_node() for _ in range(4)]
        g.add_edge(nodes[0], nodes[1], 1.0)
        g.add_edge(nodes[1], nodes[2], 2.0)
        g.add_edge(nodes[2], nodes[3], 3.0)
        edges = list(g.edges())
        assert len(edges) == 3
        assert all(u < v for u, v, _ in edges)
        assert sum(w for _, _, w in edges) == 6.0

    def test_degree(self):
        g = Graph()
        a, b, c = (g.add_node() for _ in range(3))
        g.add_edge(a, b)
        g.add_edge(a, c)
        assert g.degree(a) == 2
        assert g.degree(b) == 1

    def test_edge_weight_missing_raises(self):
        g = Graph()
        a, b = g.add_node(), g.add_node()
        with pytest.raises(GraphError):
            g.edge_weight(a, b)

    def test_all_labels(self):
        g = Graph()
        g.add_node(labels=["a"])
        g.add_node(labels=["b", "a"])
        assert sorted(g.all_labels()) == ["a", "b"]
        assert g.num_labels == 2


class TestNames:
    def test_round_trip(self):
        g = Graph()
        v = g.add_node(name="alice")
        assert g.name_of(v) == "alice"
        assert g.node_by_name("alice") == v
        assert g.has_name("alice")
        assert not g.has_name("bob")

    def test_duplicate_name_rejected(self):
        g = Graph()
        g.add_node(name="x")
        with pytest.raises(GraphError):
            g.add_node(name="x")

    def test_unknown_name_raises(self):
        with pytest.raises(GraphError):
            Graph().node_by_name("ghost")

    def test_unnamed_node(self):
        g = Graph()
        v = g.add_node()
        assert g.name_of(v) is None


class TestSubgraphAndCopy:
    def test_subgraph_induced(self):
        g = Graph()
        nodes = [g.add_node(labels=[f"l{i}"], name=f"n{i}") for i in range(4)]
        g.add_edge(nodes[0], nodes[1], 1.0)
        g.add_edge(nodes[1], nodes[2], 2.0)
        g.add_edge(nodes[2], nodes[3], 3.0)
        sub, mapping = g.subgraph([nodes[0], nodes[1], nodes[2]])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert sub.labels_of(mapping[nodes[1]]) == frozenset({"l1"})
        assert sub.name_of(mapping[nodes[2]]) == "n2"
        sub.validate()

    def test_copy_is_independent(self):
        g = Graph()
        a, b = g.add_node(labels=["x"]), g.add_node()
        g.add_edge(a, b, 1.0)
        clone = g.copy()
        clone.add_node(labels=["y"])
        clone.add_edge(a, b, 0.5)  # lowers the copy only
        assert g.num_nodes == 2
        assert g.edge_weight(a, b) == 1.0
        assert clone.edge_weight(a, b) == 0.5
        g.validate()
        clone.validate()

    def test_validate_passes_on_wellformed(self, path_graph):
        path_graph.validate()

    def test_repr(self):
        g = Graph()
        g.add_node(labels=["a"])
        assert "n=1" in repr(g)
