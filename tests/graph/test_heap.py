"""Unit and property tests for the addressable binary heap."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.heap import IndexedHeap


class TestBasics:
    def test_empty(self):
        h = IndexedHeap()
        assert len(h) == 0
        assert not h
        assert "x" not in h

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedHeap().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedHeap().peek()

    def test_push_pop_single(self):
        h = IndexedHeap()
        assert h.push("a", 1.0)
        assert h.peek() == ("a", 1.0)
        assert h.pop() == ("a", 1.0)
        assert len(h) == 0

    def test_pop_order(self):
        h = IndexedHeap()
        for key, pri in [("a", 3), ("b", 1), ("c", 2)]:
            h.push(key, pri)
        assert [h.pop()[0] for _ in range(3)] == ["b", "c", "a"]

    def test_push_decreases_priority(self):
        h = IndexedHeap()
        h.push("a", 5.0)
        assert h.push("a", 2.0)
        assert h.priority_of("a") == 2.0
        assert len(h) == 1

    def test_push_ignores_worse_priority(self):
        h = IndexedHeap()
        h.push("a", 2.0)
        assert not h.push("a", 5.0)
        assert h.priority_of("a") == 2.0

    def test_update_can_raise_priority(self):
        h = IndexedHeap()
        h.push("a", 1.0)
        h.push("b", 2.0)
        h.update("a", 9.0)
        assert h.pop() == ("b", 2.0)
        assert h.pop() == ("a", 9.0)

    def test_update_inserts_when_absent(self):
        h = IndexedHeap()
        h.update("a", 4.0)
        assert "a" in h
        assert h.priority_of("a") == 4.0

    def test_priority_of_missing_raises(self):
        with pytest.raises(KeyError):
            IndexedHeap().priority_of("nope")

    def test_discard(self):
        h = IndexedHeap()
        for i in range(10):
            h.push(i, 10 - i)
        assert h.discard(5)
        assert not h.discard(5)
        assert 5 not in h
        popped = [h.pop()[0] for _ in range(len(h))]
        assert 5 not in popped
        h.check_invariants()

    def test_clear(self):
        h = IndexedHeap()
        h.push("a", 1)
        h.clear()
        assert len(h) == 0
        assert "a" not in h

    def test_iter_yields_all_keys(self):
        h = IndexedHeap()
        for i in range(6):
            h.push(i, -i)
        assert sorted(h) == list(range(6))

    def test_tuple_keys(self):
        h = IndexedHeap()
        h.push((1, 2), 3.0)
        h.push((1, 3), 1.0)
        assert h.pop()[0] == (1, 3)


class TestRandomized:
    def test_heapsort_agreement(self):
        rng = random.Random(42)
        h = IndexedHeap()
        items = {i: rng.uniform(0, 100) for i in range(500)}
        for key, pri in items.items():
            h.push(key, pri)
        h.check_invariants()
        popped = []
        while h:
            popped.append(h.pop()[1])
        assert popped == sorted(items.values())

    def test_decrease_key_storm(self):
        rng = random.Random(7)
        h = IndexedHeap()
        best = {}
        for _ in range(3000):
            key = rng.randrange(100)
            pri = rng.uniform(0, 1000)
            h.push(key, pri)
            if key not in best or pri < best[key]:
                best[key] = pri
        h.check_invariants()
        out = {}
        while h:
            key, pri = h.pop()
            out[key] = pri
        assert out == best

    def test_mixed_operations_invariants(self):
        rng = random.Random(3)
        h = IndexedHeap()
        live = set()
        for step in range(4000):
            op = rng.random()
            key = rng.randrange(60)
            if op < 0.5:
                h.push(key, rng.uniform(0, 100))
                live.add(key)
            elif op < 0.7 and h:
                k, _ = h.pop()
                live.discard(k)
            elif op < 0.85:
                h.update(key, rng.uniform(0, 100))
                live.add(key)
            else:
                if h.discard(key):
                    live.discard(key)
            if step % 500 == 0:
                h.check_invariants()
                assert set(h) == live
        h.check_invariants()


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["push", "pop", "update", "discard"]),
            st.integers(0, 15),
            st.floats(0, 100, allow_nan=False),
        ),
        max_size=200,
    )
)
def test_property_matches_reference_model(ops):
    """The heap behaves like a dict + min scan under any op sequence."""
    h = IndexedHeap()
    model = {}
    for op, key, pri in ops:
        if op == "push":
            h.push(key, pri)
            if key not in model or pri < model[key]:
                model[key] = pri
        elif op == "update":
            h.update(key, pri)
            model[key] = pri
        elif op == "discard":
            assert h.discard(key) == (key in model)
            model.pop(key, None)
        else:  # pop
            if model:
                k, p = h.pop()
                expected = min(model.values())
                assert p == expected
                assert model[k] == p
                del model[k]
            else:
                assert len(h) == 0
    h.check_invariants()
    assert len(h) == len(model)
    for key, pri in model.items():
        assert h.priority_of(key) == pri
