"""Graph persistence round-trip tests."""

from __future__ import annotations

import pytest

from repro import Graph, GraphError
from repro.graph import generators
from repro.graph.io import load_graph, save_graph


class TestRoundTrip:
    def test_small_graph(self, tmp_path):
        g = Graph()
        a = g.add_node(labels=["x", "y"])
        b = g.add_node()
        c = g.add_node(labels=["z"])
        g.add_edge(a, b, 1.5)
        g.add_edge(b, c, 2.25)
        stem = str(tmp_path / "g")
        edges_path, labels_path = save_graph(g, stem)
        assert edges_path.endswith(".edges")
        assert labels_path.endswith(".labels")

        loaded = load_graph(stem)
        assert loaded.num_nodes == 3
        assert loaded.num_edges == 2
        assert loaded.edge_weight(0, 1) == 1.5
        assert loaded.edge_weight(1, 2) == 2.25
        assert loaded.labels_of(0) == frozenset({"x", "y"})
        assert loaded.labels_of(1) == frozenset()
        assert loaded.labels_of(2) == frozenset({"z"})

    def test_random_graph_round_trip(self, tmp_path):
        g = generators.random_graph(40, 80, num_query_labels=5, seed=3)
        stem = str(tmp_path / "rand")
        save_graph(g, stem)
        loaded = load_graph(stem)
        assert loaded.num_nodes == g.num_nodes
        assert loaded.num_edges == g.num_edges
        assert sorted(loaded.edges()) == sorted(g.edges())
        for v in g.nodes():
            assert loaded.labels_of(v) == frozenset(
                str(x) for x in g.labels_of(v)
            )

    def test_isolated_trailing_nodes_preserved(self, tmp_path):
        g = Graph()
        g.add_node()
        g.add_node()
        g.add_node()  # no edges at all
        stem = str(tmp_path / "iso")
        save_graph(g, stem)
        loaded = load_graph(stem)
        assert loaded.num_nodes == 3
        assert loaded.num_edges == 0

    def test_weights_exact(self, tmp_path):
        g = Graph()
        a, b = g.add_node(), g.add_node()
        g.add_edge(a, b, 0.1 + 0.2)  # repr round-trips floats exactly
        stem = str(tmp_path / "w")
        save_graph(g, stem)
        assert load_graph(stem).edge_weight(0, 1) == 0.1 + 0.2


class TestErrors:
    def test_missing_edge_file(self, tmp_path):
        with pytest.raises(GraphError):
            load_graph(str(tmp_path / "ghost"))

    def test_malformed_edge_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1\t2\n")
        with pytest.raises(GraphError):
            load_graph(str(tmp_path / "bad"))

    def test_label_for_unknown_node(self, tmp_path):
        (tmp_path / "x.edges").write_text("0\t1\t1.0\n")
        (tmp_path / "x.labels").write_text("9\tfoo\n")
        with pytest.raises(GraphError):
            load_graph(str(tmp_path / "x"))

    def test_missing_label_file_is_fine(self, tmp_path):
        (tmp_path / "y.edges").write_text("0\t1\t1.0\n")
        loaded = load_graph(str(tmp_path / "y"))
        assert loaded.num_edges == 1
