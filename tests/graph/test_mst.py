"""MST and tree-predicate tests (networkx as oracle)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graph import generators
from repro.graph.mst import is_tree, kruskal_mst, minimum_spanning_forest


class TestKruskal:
    def test_empty(self):
        assert minimum_spanning_forest([]) == []
        assert kruskal_mst([]) == ([], 0.0)

    def test_single_edge(self):
        tree, weight = kruskal_mst([(0, 1, 3.0)])
        assert tree == [(0, 1, 3.0)]
        assert weight == 3.0

    def test_triangle_drops_heaviest(self):
        edges = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 5.0)]
        tree, weight = kruskal_mst(edges)
        assert weight == 3.0
        assert len(tree) == 2
        assert (0, 2, 5.0) not in tree

    def test_duplicate_edges_collapsed_to_min(self):
        edges = [(0, 1, 5.0), (1, 0, 2.0), (0, 1, 7.0)]
        tree, weight = kruskal_mst(edges)
        assert tree == [(0, 1, 2.0)]
        assert weight == 2.0

    def test_self_loops_ignored(self):
        tree, weight = kruskal_mst([(0, 0, 1.0), (0, 1, 2.0)])
        assert tree == [(0, 1, 2.0)]

    def test_forest_on_disconnected_input(self):
        edges = [(0, 1, 1.0), (2, 3, 2.0)]
        forest = minimum_spanning_forest(edges)
        assert len(forest) == 2

    def test_matches_networkx_weight(self):
        for seed in range(8):
            g = generators.random_graph(20, 45, seed=seed)
            edges = list(g.edges())
            _, weight = kruskal_mst(edges)
            nxg = nx.Graph()
            nxg.add_weighted_edges_from(edges)
            expected = sum(
                d["weight"] for _, _, d in nx.minimum_spanning_edges(nxg, data=True)
            )
            assert weight == pytest.approx(expected)

    def test_arbitrary_hashable_nodes(self):
        tree, weight = kruskal_mst([("a", "b", 1.0), ("b", "c", 2.0), ("a", "c", 9.0)])
        assert weight == 3.0


class TestIsTree:
    def test_empty_is_tree(self):
        assert is_tree([])

    def test_single_edge(self):
        assert is_tree([(0, 1, 1.0)])

    def test_cycle_is_not_tree(self):
        assert not is_tree([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])

    def test_disconnected_is_not_tree(self):
        assert not is_tree([(0, 1, 1.0), (2, 3, 1.0)])

    def test_path_is_tree(self):
        assert is_tree([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])

    def test_mst_output_is_always_a_tree(self):
        for seed in range(5):
            g = generators.random_graph(15, 30, connected=True, seed=seed)
            tree, _ = kruskal_mst(list(g.edges()))
            assert is_tree(tree)
