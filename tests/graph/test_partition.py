"""Graph partitioning tests (the BLINKS index substrate)."""

from __future__ import annotations

import pytest

from repro import Graph
from repro.graph import generators
from repro.graph.partition import Partition, bfs_partition
from repro.graph.shortest_paths import multi_source_dijkstra


class TestBfsPartition:
    def test_every_node_assigned_once(self):
        g = generators.random_graph(60, 130, seed=0)
        partition = bfs_partition(g, 10)
        partition.validate()
        assert sorted(n for block in partition.blocks for n in block) == list(
            g.nodes()
        )

    def test_block_size_respected(self):
        g = generators.random_graph(80, 160, seed=1)
        partition = bfs_partition(g, 12)
        assert all(len(block) <= 12 for block in partition.blocks)

    def test_blocks_connected(self):
        g = generators.road_grid(10, 10, seed=2)
        partition = bfs_partition(g, 9)
        for members in partition.blocks:
            # BFS-grown blocks are connected within the original graph.
            member_set = set(members)
            seen = {members[0]}
            stack = [members[0]]
            while stack:
                node = stack.pop()
                for neighbor, _ in g.neighbors(node):
                    if neighbor in member_set and neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            assert seen == member_set

    def test_block_size_one(self):
        g = generators.random_graph(15, 25, seed=3)
        partition = bfs_partition(g, 1)
        assert partition.num_blocks == 15

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            bfs_partition(Graph(), 0)

    def test_disconnected_graph(self):
        g = Graph()
        a, b = g.add_node(), g.add_node()
        g.add_edge(a, b, 1.0)
        g.add_node()  # isolated
        partition = bfs_partition(g, 10)
        partition.validate()
        assert partition.num_blocks == 2

    def test_portals(self):
        g = generators.road_grid(6, 6, seed=4)
        partition = bfs_partition(g, 6)
        for block in range(partition.num_blocks):
            portals = partition.portals(block)
            members = set(partition.blocks[block])
            for portal in portals:
                assert portal in members
                assert any(
                    partition.block_of(v) != block
                    for v, _ in g.neighbors(portal)
                )


class TestBlockDistances:
    @pytest.mark.parametrize("seed", range(5))
    def test_admissible_lower_bounds(self, seed):
        """block_distances[b] <= true dist(v, sources) for every v in b."""
        g = generators.random_graph(50, 110, seed=seed)
        partition = bfs_partition(g, 8)
        sources = [0, 7, 23]
        source_blocks = sorted({partition.block_of(v) for v in sources})
        block_lb = partition.block_distances(source_blocks)
        true_dist, _ = multi_source_dijkstra(g, sources)
        for v in g.nodes():
            assert block_lb[partition.block_of(v)] <= true_dist[v] + 1e-9

    def test_source_blocks_zero(self):
        g = generators.random_graph(30, 60, seed=7)
        partition = bfs_partition(g, 6)
        lb = partition.block_distances([2])
        assert lb[2] == 0.0

    def test_assignment_length_validated(self):
        g = generators.random_graph(5, 6, seed=8)
        with pytest.raises(ValueError):
            Partition(g, [0, 0])
