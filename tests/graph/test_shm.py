"""Units for the shared-memory CSR layer (`repro.graph.shm`).

The fleet's foundation: a frozen snapshot exported once into a
POSIX shared-memory segment, attached zero-copy by worker processes,
fingerprint-verified on load, and unlinked by whoever detaches last.
These tests pin the segment lifecycle (refcounts, deferred unlink,
idempotent close), the typed error surface (attach vs layout vs
fingerprint), and the reconstruction contract — a graph rebuilt from
the mapped buffers must answer queries bit-for-bit like the donor.
"""

from __future__ import annotations

import pytest

from repro import solve_gst
from repro.errors import ShmAttachError, ShmLayoutError, StoreFingerprintError
from repro.graph import generators
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.graph.shm import SHM_MAGIC, SharedCSR


@pytest.fixture
def graph():
    return generators.random_graph(
        120, 360, num_query_labels=4, label_frequency=6, seed=11
    )


@pytest.fixture
def csr(graph):
    return graph.freeze()


class TestRoundTrip:
    def test_loaded_graph_matches_donor(self, csr):
        with csr.to_shared() as shared:
            loaded, handle = CSRGraph.from_shared(shared.name)
            try:
                assert loaded.num_nodes == csr.num_nodes
                assert loaded.num_edges == csr.num_edges
                assert list(loaded.indptr) == list(csr.indptr)
                assert list(loaded.indices) == list(csr.indices)
                assert list(loaded.weights) == list(csr.weights)
                assert loaded.adjacency == csr.adjacency
                assert loaded.int_adjacency == csr.int_adjacency
                assert loaded.fingerprint == csr.fingerprint
                assert {
                    label: sorted(loaded.members(label))
                    for label in loaded.all_labels()
                } == {
                    label: sorted(csr.members(label))
                    for label in csr.all_labels()
                }
            finally:
                handle.close()

    def test_graph_from_csr_solves_identically(self, graph, csr):
        reference = solve_gst(graph, ["q0", "q1"], algorithm="pruneddp++")
        with csr.to_shared() as shared:
            loaded, handle = CSRGraph.from_shared(shared.name)
            try:
                rebuilt = Graph.from_csr(loaded)
                rebuilt.validate()
                # The rebuilt graph adopts the mapped snapshot: freezing
                # is a no-op, so solvers run the same CSR kernels.
                assert rebuilt.freeze() is loaded
                result = solve_gst(
                    rebuilt, ["q0", "q1"], algorithm="pruneddp++"
                )
                assert result.weight == reference.weight
                assert sorted(result.tree.edges) == sorted(
                    reference.tree.edges
                )
            finally:
                handle.close()

    def test_expected_fingerprint_accepts_the_right_graph(self, csr):
        with csr.to_shared() as shared:
            loaded, handle = CSRGraph.from_shared(
                shared.name, expect_fingerprint=csr.fingerprint
            )
            handle.close()
            assert loaded.fingerprint == csr.fingerprint


class TestErrorSurface:
    def test_attach_unknown_name_is_typed(self):
        with pytest.raises(ShmAttachError):
            SharedCSR.attach("gst-csr-no-such-segment")

    def test_fingerprint_pinning_rejects_the_wrong_graph(self, csr):
        other = generators.random_graph(
            60, 150, num_query_labels=3, label_frequency=4, seed=99
        ).freeze()
        with csr.to_shared() as shared:
            with pytest.raises(StoreFingerprintError):
                CSRGraph.from_shared(
                    shared.name, expect_fingerprint=other.fingerprint
                )
            # The failed load released its refcount: the owner is still
            # the only holder and a clean attach still works.
            assert shared.refcount() == 1
            loaded, handle = CSRGraph.from_shared(shared.name)
            handle.close()
            assert loaded.fingerprint == csr.fingerprint

    def test_corrupt_magic_is_a_layout_error(self, csr):
        shared = csr.to_shared()
        try:
            shared._shm.buf[: len(SHM_MAGIC)] = b"X" * len(SHM_MAGIC)
            with pytest.raises(ShmLayoutError):
                SharedCSR.attach(shared.name)
        finally:
            shared.close()

    def test_attach_after_unlink_is_typed_not_buffererror(self, csr):
        shared = csr.to_shared()
        name = shared.name
        shared.close()
        with pytest.raises(ShmAttachError):
            SharedCSR.attach(name)


class TestLifecycle:
    def test_refcount_create_attach_close(self, csr):
        shared = csr.to_shared()
        assert shared.refcount() == 1
        attached = SharedCSR.attach(shared.name)
        assert shared.refcount() == 2
        attached.close()
        assert shared.refcount() == 1
        shared.close()

    def test_owner_close_first_defers_unlink(self, csr):
        shared = csr.to_shared()
        name = shared.name
        attached = SharedCSR.attach(name)
        shared.close()
        # The owner is gone but the attacher's mapping stays valid:
        # loading still works and the fingerprint still verifies.
        loaded = attached.load()
        assert loaded.fingerprint == csr.fingerprint
        assert attached.owner_closed()
        attached.close()
        # Last one out removed the name.
        with pytest.raises(ShmAttachError):
            SharedCSR.attach(name)

    def test_close_is_idempotent(self, csr):
        shared = csr.to_shared()
        shared.load()  # materialize zero-copy views over the buffer
        shared.close()
        shared.close()

    def test_info_is_json_safe(self, csr):
        import json

        with csr.to_shared() as shared:
            info = shared.info()
            json.dumps(info)
            assert info["num_nodes"] == csr.num_nodes
            assert info["num_edges"] == csr.num_edges
            assert info["fingerprint"] == csr.fingerprint
            assert info["owner"] is True
            assert info["size_bytes"] > 0
