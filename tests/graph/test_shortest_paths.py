"""Dijkstra and virtual-node distance tests (networkx as oracle)."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro import Graph
from repro.graph import generators
from repro.graph.shortest_paths import (
    dijkstra,
    label_enhanced_distances,
    multi_source_dijkstra,
    path_edges_to_source,
    reconstruct_path,
)

INF = float("inf")


def to_networkx(graph: Graph) -> nx.Graph:
    nxg = nx.Graph()
    nxg.add_nodes_from(graph.nodes())
    for u, v, w in graph.edges():
        nxg.add_edge(u, v, weight=w)
    return nxg


class TestSingleSource:
    def test_path_graph(self, path_graph):
        dist, parent = dijkstra(path_graph, 0)
        assert dist == [0.0, 1.0, 3.0]
        assert parent[0] == -1
        assert reconstruct_path(parent, 2) == [2, 1, 0]

    def test_unreachable(self):
        g = Graph()
        g.add_node()
        g.add_node()
        dist, parent = dijkstra(g, 0)
        assert dist == [0.0, INF]
        assert parent[1] == -1

    def test_early_stop_with_targets(self, star_graph):
        dist, _ = dijkstra(star_graph, 1, targets=[0])
        assert dist[0] == 1.0  # hub reached

    def test_matches_networkx_on_random_graphs(self):
        for seed in range(8):
            g = generators.random_graph(30, 60, seed=seed)
            nxg = to_networkx(g)
            source = seed % g.num_nodes
            expected = nx.single_source_dijkstra_path_length(nxg, source)
            dist, parent = dijkstra(g, source)
            for node in g.nodes():
                assert dist[node] == pytest.approx(expected.get(node, INF))
            # Parent pointers reconstruct paths of exactly dist weight.
            for node in g.nodes():
                if dist[node] == INF or node == source:
                    continue
                edges = path_edges_to_source(parent, node)
                total = sum(g.edge_weight(u, v) for u, v in edges)
                assert total == pytest.approx(dist[node])

    def test_bad_source_raises(self, path_graph):
        with pytest.raises(IndexError):
            dijkstra(path_graph, 99)


class TestMultiSource:
    def test_equivalent_to_virtual_node(self):
        """Multi-source == Dijkstra from an explicit virtual node."""
        for seed in range(6):
            g = generators.random_graph(25, 50, seed=seed)
            rng = random.Random(seed)
            sources = rng.sample(range(g.num_nodes), 4)

            dist, _ = multi_source_dijkstra(g, sources)

            # Build the explicit virtual-node graph in networkx.
            nxg = to_networkx(g)
            virtual = "VIRTUAL"
            for s in sources:
                nxg.add_edge(virtual, s, weight=0.0)
            expected = nx.single_source_dijkstra_path_length(nxg, virtual)
            for node in g.nodes():
                assert dist[node] == pytest.approx(expected.get(node, INF))

    def test_sources_have_zero_distance(self, star_graph):
        dist, parent = multi_source_dijkstra(star_graph, [1, 2])
        assert dist[1] == 0.0 and dist[2] == 0.0
        assert parent[1] == -1 and parent[2] == -1

    def test_parent_walk_ends_at_a_source(self, star_graph):
        dist, parent = multi_source_dijkstra(star_graph, [1, 2])
        path = reconstruct_path(parent, 3)
        assert path[-1] in (1, 2)
        assert dist[3] == pytest.approx(
            sum(star_graph.edge_weight(u, v) for u, v in zip(path, path[1:]))
        )


class TestLabelEnhancedDistances:
    def test_matches_explicit_enhanced_graph(self):
        """Teleport Dijkstra == Dijkstra on the materialized enhanced graph."""
        for seed in range(6):
            g = generators.random_graph(
                24, 48, num_query_labels=4, label_frequency=3, seed=seed
            )
            groups = [list(g.nodes_with_label(f"q{i}")) for i in range(4)]
            got = label_enhanced_distances(g, groups)

            nxg = to_networkx(g)
            for i, members in enumerate(groups):
                for node in members:
                    nxg.add_edge(("virt", i), node, weight=0.0)
            for i in range(4):
                expected = nx.single_source_dijkstra_path_length(nxg, ("virt", i))
                for j in range(4):
                    assert got[i][j] == pytest.approx(
                        expected.get(("virt", j), INF)
                    ), (seed, i, j)

    def test_symmetry_and_zero_diagonal(self):
        g = generators.random_graph(20, 35, num_query_labels=3, seed=1)
        groups = [list(g.nodes_with_label(f"q{i}")) for i in range(3)]
        d = label_enhanced_distances(g, groups)
        for i in range(3):
            assert d[i][i] == 0.0
            for j in range(3):
                assert d[i][j] == d[j][i]

    def test_overlapping_groups_distance_zero(self):
        g = Graph()
        v = g.add_node(labels=["a", "b"])
        w = g.add_node(labels=["c"])
        g.add_edge(v, w, 5.0)
        d = label_enhanced_distances(g, [[v], [v], [w]])
        assert d[0][1] == 0.0
        assert d[0][2] == 5.0

    def test_disconnected_groups_inf(self):
        g = Graph()
        a = g.add_node(labels=["a"])
        b = g.add_node(labels=["b"])
        d = label_enhanced_distances(g, [[a], [b]])
        assert d[0][1] == INF
