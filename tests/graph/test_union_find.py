"""Tests for the disjoint-set structure."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.union_find import UnionFind


class TestBasics:
    def test_auto_registration(self):
        uf = UnionFind()
        assert uf.find("a") == "a"
        assert "a" in uf
        assert len(uf) == 1
        assert uf.num_components == 1

    def test_preregistered_items(self):
        uf = UnionFind(["a", "b", "c"])
        assert len(uf) == 3
        assert uf.num_components == 3

    def test_union_merges(self):
        uf = UnionFind()
        assert uf.union(1, 2)
        assert uf.connected(1, 2)
        assert not uf.union(1, 2)
        assert uf.num_components == 1

    def test_transitivity(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.connected(1, 3)
        assert not uf.connected(1, 4)
        assert uf.num_components == 2  # {1,2,3} and {4}

    def test_component_count(self):
        uf = UnionFind(range(10))
        for i in range(0, 10, 2):
            uf.union(i, i + 1)
        assert uf.num_components == 5

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add("x")
        uf.add("x")
        assert len(uf) == 1


class TestRandomized:
    def test_against_naive_model(self):
        rng = random.Random(5)
        uf = UnionFind()
        groups = {i: {i} for i in range(40)}

        def naive_find(x):
            for rep, members in groups.items():
                if x in members:
                    return rep
            raise AssertionError

        for _ in range(300):
            a, b = rng.randrange(40), rng.randrange(40)
            ra, rb = naive_find(a), naive_find(b)
            expected_new = ra != rb
            assert uf.union(a, b) == expected_new
            if expected_new:
                groups[ra] |= groups.pop(rb)
        for _ in range(200):
            a, b = rng.randrange(40), rng.randrange(40)
            assert uf.connected(a, b) == (naive_find(a) == naive_find(b))
        assert uf.num_components == len(groups)


@settings(max_examples=50, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=60
    )
)
def test_property_equivalence_closure(pairs):
    """union-find agrees with the reflexive-transitive closure."""
    uf = UnionFind()
    import itertools

    adjacency = {i: {i} for i in range(13)}
    for a, b in pairs:
        uf.union(a, b)
        merged = adjacency[a] | adjacency[b]
        for member in merged:
            adjacency[member] = merged
    for a, b in itertools.combinations(range(13), 2):
        assert uf.connected(a, b) == (b in adjacency[a])
