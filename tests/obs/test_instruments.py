"""Instrumentation tests: the registry must not drift from the traces.

The acceptance property of the observability layer: after a batch, the
default registry's query/engine/cache counters are *exactly* the sums
of the corresponding fields over the batch's ``QueryTrace`` records —
one recording point, no second bookkeeping path to disagree.
"""

import pytest

from repro.graph import generators
from repro.obs import MetricsRegistry, get_registry, instruments
from repro.service import GraphIndex, QueryExecutor


@pytest.fixture
def graph():
    return generators.random_graph(
        120, 360, num_query_labels=6, label_frequency=4, seed=11
    )


def _counter_value(counter, **labels):
    return counter.labels(**labels).value if labels else counter.value()


class _Deltas:
    """Before/after snapshot helper for the process-wide registry."""

    def __init__(self):
        self._before = {}

    def mark(self, name, counter, **labels):
        self._before[name] = (counter, labels, _counter_value(counter, **labels))

    def delta(self, name):
        counter, labels, before = self._before[name]
        return _counter_value(counter, **labels) - before


def test_batch_counters_match_traces_exactly(graph):
    registry = get_registry()
    queries = [["q0", "q1"], ["q2", "q3"], ["q0", "q4", "q5"]]

    deltas = _Deltas()
    queries_counter = instruments.queries_total(registry)
    engine = instruments.engine_events(registry)
    caches = instruments.label_cache_events(registry)
    deltas.mark("popped", engine, event="popped")
    deltas.mark("pushed", engine, event="pushed")
    deltas.mark("pruned", engine, event="pruned")
    deltas.mark(
        "improved", engine, event="incumbent_improved"
    )
    deltas.mark("cache_hit", caches, event="hit")
    deltas.mark("cache_miss", caches, event="miss")

    def _query_samples():
        return {
            (s["labels"]["status"], s["labels"]["algorithm"]): s["value"]
            for s in queries_counter.samples()
        }

    per_label_before = _query_samples()
    query_seconds = registry.get("gst_query_seconds")
    seconds_count_before = 0
    if query_seconds is not None:
        samples = query_seconds.samples()
        seconds_count_before = samples[0]["count"] if samples else 0

    index = GraphIndex(graph)
    with QueryExecutor(index, algorithm="pruneddp++") as executor:
        outcomes = executor.run_batch(queries)
    assert len(outcomes) == 3

    traces = [outcome.trace for outcome in outcomes]
    # Per (status, algorithm) query counts: registry deltas must equal
    # the tally over traces exactly — no drift, no double counting.
    from collections import Counter as TallyCounter

    expected = TallyCounter(
        (trace.status, trace.algorithm) for trace in traces
    )
    per_label_after = _query_samples()
    observed = {
        key: per_label_after[key] - per_label_before.get(key, 0)
        for key in per_label_after
    }
    for key, count in expected.items():
        assert observed.get(key) == count

    # Engine counters: exact sums over traces, no drift.
    def trace_sum(key):
        return sum((trace.stats or {}).get(key, 0) for trace in traces)

    assert deltas.delta("popped") == trace_sum("states_popped")
    assert deltas.delta("pushed") == trace_sum("states_pushed")
    assert deltas.delta("pruned") == trace_sum("states_pruned")
    assert deltas.delta("improved") == trace_sum("incumbent_improvements")
    assert deltas.delta("cache_hit") == sum(t.cache_hits for t in traces)
    assert deltas.delta("cache_miss") == sum(t.cache_misses for t in traces)

    # Every query observed exactly one latency sample.
    samples = registry.get("gst_query_seconds").samples()
    assert samples[0]["count"] - seconds_count_before == len(traces)

    # The search actually did work, so the totals are non-trivial.
    assert trace_sum("states_popped") > 0
    assert trace_sum("incumbent_improvements") > 0


def test_queries_total_delta_matches_batch_size(graph):
    registry = get_registry()
    counter = instruments.queries_total(registry)
    before = sum(s["value"] for s in counter.samples())
    index = GraphIndex(graph)
    with QueryExecutor(index, algorithm="basic") as executor:
        outcomes = executor.run_batch([["q0", "q1"], ["q1", "q2"]])
    after = sum(s["value"] for s in counter.samples())
    assert after - before == len(outcomes) == 2


def test_record_query_trace_isolated_registry(graph):
    """Fold a real trace into a private registry and check the fields."""
    registry = MetricsRegistry()
    index = GraphIndex(graph)
    with QueryExecutor(index, algorithm="pruneddp++") as executor:
        outcome = executor.submit(["q0", "q1"]).result()
    trace = outcome.trace
    instruments.record_query_trace(trace, registry)

    counter = instruments.queries_total(registry)
    assert counter.value(status=trace.status, algorithm=trace.algorithm) == 1
    engine = instruments.engine_events(registry)
    assert engine.value(event="popped") == trace.stats["states_popped"]
    # An ok query with a finite ratio records its epsilon-at-exit.
    if trace.status == "ok":
        eps = registry.get("gst_epsilon_at_exit").samples()
        assert eps[0]["count"] == 1


def test_executor_queue_depth_returns_to_zero(graph):
    registry = get_registry()
    depth = instruments.executor_queue_depth(registry)
    index = GraphIndex(graph)
    with QueryExecutor(index, algorithm="basic") as executor:
        futures = [executor.submit(["q0", "q1"]) for _ in range(4)]
        for future in futures:
            future.result()
    assert depth.value() == 0.0


def test_register_all_materializes_full_inventory():
    registry = MetricsRegistry()
    instruments.register_all(registry)
    names = registry.names()
    assert "gst_queries_total" in names
    assert "gst_server_frames_total" in names
    assert "gst_traces_dropped_total" in names
    assert len(names) == len(instruments.inventory())
    # Rendering the idle inventory is valid exposition text.
    from repro.obs import parse_exposition

    parse_exposition(registry.render_exposition())


def test_breaker_state_encoding():
    registry = MetricsRegistry()
    instruments.set_breaker_state("basic", "open", registry)
    gauge = instruments.breaker_state(registry)
    assert gauge.value(algorithm="basic") == 2
    instruments.set_breaker_state("basic", "closed", registry)
    assert gauge.value(algorithm="basic") == 0
