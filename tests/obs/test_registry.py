"""Tests for the metrics registry primitives and the exposition codec."""

import math
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    get_registry,
    parse_exposition,
)


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_ops_total", "ops")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("t_ops_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labeled_children_are_independent(self):
        counter = MetricsRegistry().counter("t_by_status_total", "x", ("status",))
        counter.labels(status="ok").inc(3)
        counter.labels("err").inc()
        assert counter.value(status="ok") == 3
        assert counter.value(status="err") == 1
        # Same label values resolve the same child.
        counter.labels(status="ok").inc()
        assert counter.labels("ok").value == 4

    def test_unlabeled_use_of_labeled_family_rejected(self):
        counter = MetricsRegistry().counter("t_by_status_total", "x", ("status",))
        with pytest.raises(ValueError):
            counter.inc()
        with pytest.raises(ValueError):
            counter.labels("a", "b")
        with pytest.raises(ValueError):
            counter.labels(wrong="x")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("t_depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value() == 3.0

    def test_can_go_negative(self):
        gauge = MetricsRegistry().gauge("t_depth")
        gauge.dec()
        assert gauge.value() == -1.0


class TestHistogram:
    def test_cumulative_buckets_sum_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t_seconds", "s", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        sample = registry.get("t_seconds").samples()[0]
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(55.55)
        assert sample["buckets"] == {"0.1": 1, "1": 2, "10": 3, "+Inf": 4}

    def test_boundary_value_lands_in_its_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t_seconds", buckets=(1.0,))
        hist.observe(1.0)  # le is inclusive
        sample = registry.get("t_seconds").samples()[0]
        assert sample["buckets"]["1"] == 1

    def test_rejects_empty_or_duplicate_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("t_bad", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("t_bad2", buckets=(1.0, 1.0))


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("t_total", "help", ("x",))
        b = registry.counter("t_total", "other help ignored", ("x",))
        assert a is b

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("t_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("t_total")

    def test_labelnames_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "", ("a",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("t_total", "", ("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("0bad")
        with pytest.raises(ValueError):
            registry.counter("has space")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "", ("0bad",))

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.counter("t_total", "", ("s",)).labels(s="ok").inc()
        registry.histogram("t_seconds").observe(0.5)
        snap = registry.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["t_total"]["samples"][0]["value"] == 1

    def test_default_registry_is_a_singleton(self):
        assert get_registry() is get_registry()


# ----------------------------------------------------------------------
# Concurrency torture: totals must be exact, not approximate.
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_threaded_totals_are_exact(self):
        registry = MetricsRegistry()
        threads_n, iters = 8, 2000
        barrier = threading.Barrier(threads_n)

        def worker(worker_id: int) -> None:
            barrier.wait()
            # Families are get-or-create from every thread at once.
            counter = registry.counter("t_ops_total", "", ("worker",))
            gauge = registry.gauge("t_depth")
            hist = registry.histogram("t_seconds", buckets=(0.5, 1.0))
            child = counter.labels(worker=str(worker_id % 2))
            for i in range(iters):
                child.inc()
                gauge.inc()
                gauge.dec()
                hist.observe((i % 2) * 1.0)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        counter = registry.counter("t_ops_total", "", ("worker",))
        total = counter.value(worker="0") + counter.value(worker="1")
        assert total == threads_n * iters
        assert registry.gauge("t_depth").value() == 0.0
        sample = registry.get("t_seconds").samples()[0]
        assert sample["count"] == threads_n * iters
        assert sample["buckets"]["+Inf"] == threads_n * iters
        # Cumulative bucket invariant survives the torture.
        assert sample["buckets"]["0.5"] == threads_n * iters // 2
        assert sample["buckets"]["1"] == threads_n * iters

    def test_concurrent_registration_returns_one_family(self):
        registry = MetricsRegistry()
        results = []
        barrier = threading.Barrier(8)

        def register() -> None:
            barrier.wait()
            results.append(registry.counter("t_race_total", "", ("k",)))

        threads = [threading.Thread(target=register) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(metric is results[0] for metric in results)


# ----------------------------------------------------------------------
# Exposition render + parse round-trip
# ----------------------------------------------------------------------
class TestExposition:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        counter = registry.counter(
            "gst_queries_total", "Queries by status.", ("status", "algorithm")
        )
        counter.labels(status="ok", algorithm="pruneddp++").inc(3)
        counter.labels(status="error", algorithm="basic").inc()
        registry.gauge("gst_inflight", "Now running.").set(2)
        hist = registry.histogram(
            "gst_query_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        hist.observe(5.0)
        return registry

    def test_render_has_help_type_and_samples(self):
        text = self._populated().render_exposition()
        assert "# HELP gst_queries_total Queries by status.\n" in text
        assert "# TYPE gst_queries_total counter\n" in text
        assert (
            'gst_queries_total{status="ok",algorithm="pruneddp++"} 3\n' in text
        )
        assert "gst_inflight 2\n" in text
        assert 'gst_query_seconds_bucket{le="+Inf"} 2\n' in text
        assert "gst_query_seconds_sum 5.05\n" in text
        assert "gst_query_seconds_count 2\n" in text
        assert text.endswith("\n")

    def test_round_trip_parses_back(self):
        registry = self._populated()
        families = parse_exposition(registry.render_exposition())
        assert families["gst_queries_total"]["type"] == "counter"
        samples = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in families["gst_queries_total"]["samples"]
        }
        key = (
            "gst_queries_total",
            (("algorithm", "pruneddp++"), ("status", "ok")),
        )
        assert samples[key] == 3
        hist = families["gst_query_seconds"]
        assert hist["type"] == "histogram"
        names = {name for name, _, _ in hist["samples"]}
        assert names == {
            "gst_query_seconds_bucket",
            "gst_query_seconds_sum",
            "gst_query_seconds_count",
        }

    def test_label_value_escaping_round_trips(self):
        registry = MetricsRegistry()
        nasty = 'a"b\\c\nd'
        registry.counter("t_total", "", ("k",)).labels(k=nasty).inc()
        families = parse_exposition(registry.render_exposition())
        (_, labels, value) = families["t_total"]["samples"][0]
        assert labels == {"k": nasty}
        assert value == 1

    def test_inf_and_large_values_render(self):
        registry = MetricsRegistry()
        registry.gauge("t_weight").set(math.inf)
        families = parse_exposition(registry.render_exposition())
        assert families["t_weight"]["samples"][0][2] == math.inf

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("not a metric line at all!")
        with pytest.raises(ValueError):
            parse_exposition("# TYPE x sideways\n")
        with pytest.raises(ValueError):
            parse_exposition('t_total{k="unterminated} 1\n')

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_exposition() == ""
        assert parse_exposition("") == {}

    def test_default_buckets_are_sorted_and_positive(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert all(b > 0 for b in DEFAULT_LATENCY_BUCKETS)
