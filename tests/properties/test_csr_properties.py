"""Properties of the CSR snapshot layer.

Two families, as the refactor's safety net:

* *Invalidation*: any mutating ``Graph`` operation performed after
  ``freeze()`` drops the cached snapshot, so a stale CSR view can never
  be served (randomized over mutation kinds via Hypothesis).
* *Kernel agreement*: the CSR kernels (including the integer-weight
  Dial fast lane) compute exactly the legacy kernels' answers on the
  same random instances the differential sweep draws — reusing
  :func:`repro.verify.differential.generate_instance` so the seeds
  here replay under ``repro verify`` verbatim.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.graph import Graph
from repro.graph.shortest_paths import (
    label_enhanced_distances_csr,
    label_enhanced_distances_legacy,
    multi_source_dijkstra_csr,
    multi_source_dijkstra_legacy,
)
from repro.verify.differential import generate_instance

# ----------------------------------------------------------------------
# Invalidation: mutation after freeze() always drops the snapshot.
# ----------------------------------------------------------------------


@st.composite
def frozen_graph_and_mutation(draw):
    n = draw(st.integers(2, 10))
    graph = Graph()
    for _ in range(n):
        graph.add_node()
    for u, v, w in draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(1.0, 20.0, allow_nan=False),
            ),
            max_size=20,
        )
    ):
        if u != v:
            graph.add_edge(u, v, w)
    for node, label in draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.sampled_from("abc")),
            max_size=8,
        )
    ):
        graph.add_labels(node, [label])
    mutation = draw(st.sampled_from(["add_node", "add_edge", "add_labels"]))
    payload = (
        draw(st.integers(0, n - 1)),
        draw(st.integers(0, n - 1)),
        draw(st.floats(0.5, 25.0, allow_nan=False)),
        draw(st.sampled_from("abcxyz")),
    )
    return graph, mutation, payload


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=frozen_graph_and_mutation())
def test_mutation_after_freeze_invalidates(case):
    graph, mutation, (u, v, weight, label) = case
    snapshot = graph.freeze()
    assert graph.snapshot() is snapshot

    if mutation == "add_node":
        graph.add_node()
        mutated = True
    elif mutation == "add_edge":
        if u == v:
            return  # self-loops are rejected; nothing to check
        before = graph.edge_weight(u, v) if graph.has_edge(u, v) else None
        graph.add_edge(u, v, weight)
        # The min-weight collapse makes heavier duplicates a no-op.
        mutated = before is None or weight < before
    else:
        mutated = label not in graph.labels_of(u)
        graph.add_labels(u, [label])

    if mutated:
        assert graph.snapshot() is None
        fresh = graph.freeze()
        assert fresh is not snapshot
        # The refrozen snapshot reflects the mutation.
        assert fresh.num_nodes == graph.num_nodes
        assert fresh.num_edges == graph.num_edges
    else:
        # No actual change: the cached snapshot stays valid (and equal).
        assert graph.snapshot() is snapshot


# ----------------------------------------------------------------------
# Kernel agreement on the differential sweep's own random instances.
# ----------------------------------------------------------------------

AGREEMENT_SEEDS = range(1000, 1040)


def test_dijkstra_kernels_agree_on_random_graphs():
    for seed in AGREEMENT_SEEDS:
        graph, labels = generate_instance(seed, max_nodes=30, max_labels=5)
        csr = graph.freeze()
        for source in range(0, graph.num_nodes, max(1, graph.num_nodes // 4)):
            legacy_dist, _ = multi_source_dijkstra_legacy(graph, [source])
            csr_dist, _ = multi_source_dijkstra_csr(csr, [source])
            assert csr_dist == legacy_dist, f"seed {seed}, source {source}"


def test_multi_source_and_label_enhanced_agree():
    for seed in AGREEMENT_SEEDS:
        graph, labels = generate_instance(seed, max_nodes=30, max_labels=5)
        groups = [list(graph.nodes_with_label(label)) for label in labels]
        groups = [members for members in groups if members]
        if not groups:
            continue
        csr = graph.freeze()
        for members in groups:
            legacy_dist, _ = multi_source_dijkstra_legacy(graph, members)
            csr_dist, _ = multi_source_dijkstra_csr(csr, members)
            assert csr_dist == legacy_dist, f"seed {seed}"
        assert label_enhanced_distances_csr(csr, groups) == (
            label_enhanced_distances_legacy(graph, groups)
        ), f"seed {seed}"


def test_targets_early_exit_agrees_on_requested_nodes():
    for seed in AGREEMENT_SEEDS:
        graph, _labels = generate_instance(seed, max_nodes=24, max_labels=4)
        csr = graph.freeze()
        targets = list(range(0, graph.num_nodes, 3)) or [0]
        legacy_dist, _ = multi_source_dijkstra_legacy(graph, [0], targets=targets)
        csr_dist, _ = multi_source_dijkstra_csr(csr, [0], targets=targets)
        for t in targets:
            assert csr_dist[t] == legacy_dist[t], f"seed {seed}, target {t}"
