"""Hypothesis properties of the AllPaths tables and lower bounds."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Graph, GSTQuery
from repro.core.allpaths import RouteTables
from repro.core.bounds import LowerBounds
from repro.core.bruteforce import brute_force_gst, brute_force_route
from repro.core.context import QueryContext
from repro.core.state import iter_bits


@st.composite
def labelled_graphs(draw, max_nodes=9, num_labels=3):
    n = draw(st.integers(num_labels, max_nodes))
    parents = [draw(st.integers(0, i - 1)) for i in range(1, n)]
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=6
        )
    )
    g = Graph()
    for _ in range(n):
        g.add_node()
    for child, parent in enumerate(parents, start=1):
        g.add_edge(child, parent, float(draw(st.integers(1, 15))))
    for u, v in extra:
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, float(draw(st.integers(1, 15))))
    labels = []
    for i in range(num_labels):
        label = f"L{i}"
        labels.append(label)
        members = draw(
            st.lists(st.integers(0, n - 1), min_size=1, max_size=2)
        )
        for node in members:
            g.add_labels(node, [label])
    return g, labels


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=labelled_graphs())
def test_route_tables_match_permutation_oracle(case):
    graph, labels = case
    query = GSTQuery(labels)
    groups = query.groups(graph)
    tables = RouteTables.build(graph, groups)
    dist = tables.virtual_distance
    k = len(labels)
    full = (1 << k) - 1
    for mask in range(1, full + 1):
        bits = list(iter_bits(mask))
        for i in bits:
            for j in bits:
                if i == j and len(bits) > 1:
                    continue
                expected = brute_force_route(dist, i, j, bits)
                assert tables.route(i, j, mask) == pytest.approx(expected)


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=labelled_graphs(max_nodes=8))
def test_combined_bound_admissible_everywhere(case):
    """π(v,X) <= f*_T(v, X̄) for every node and every mask."""
    graph, labels = case
    query = GSTQuery(labels)
    ctx = QueryContext.build(graph, query)
    tables = RouteTables.build(graph, ctx.groups)
    bounds = LowerBounds(ctx, tables)
    full = ctx.full_mask
    for v in graph.nodes():
        for covered in range(full):
            missing_labels = [
                labels[i] for i in iter_bits(full & ~covered)
            ]
            marked = graph.copy()
            marked.add_labels(v, ["__root__"])
            oracle, _ = brute_force_gst(marked, missing_labels + ["__root__"])
            assert bounds.pi(v, covered) <= oracle + 1e-9


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=labelled_graphs(max_nodes=10))
def test_virtual_distance_metric_properties(case):
    """Label-enhanced virtual distances form a pseudometric."""
    graph, labels = case
    query = GSTQuery(labels)
    groups = query.groups(graph)
    tables = RouteTables.build(graph, groups)
    d = tables.virtual_distance
    k = len(labels)
    for i in range(k):
        assert d[i][i] == 0.0
        for j in range(k):
            assert d[i][j] == d[j][i]
            assert d[i][j] >= 0.0
            for m in range(k):
                if d[i][m] < float("inf") and d[m][j] < float("inf"):
                    assert d[i][j] <= d[i][m] + d[m][j] + 1e-9
