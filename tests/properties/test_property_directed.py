"""Hypothesis properties of the directed GST solver."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.directed import (
    DirectedGSTSolver,
    brute_force_directed_gst,
)
from repro.graph.digraph import DiGraph


@st.composite
def directed_cases(draw, max_nodes=8, max_labels=3):
    """Random DiGraph with a guaranteed covering root (node 0)."""
    n = draw(st.integers(2, max_nodes))
    k = draw(st.integers(1, max_labels))
    # Out-arborescence from node 0 keeps every query feasible.
    parents = [draw(st.integers(0, i - 1)) for i in range(1, n)]
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=n,
        )
    )
    weights = draw(
        st.lists(
            st.integers(1, 15),
            min_size=n - 1 + len(extra),
            max_size=n - 1 + len(extra),
        )
    )
    label_nodes = [
        draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=2))
        for _ in range(k)
    ]
    g = DiGraph()
    for _ in range(n):
        g.add_node()
    w = iter(weights)
    for child, parent in enumerate(parents, start=1):
        g.add_edge(parent, child, float(next(w)))
    for u, v in extra:
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, float(next(w)))
    labels = []
    for i, nodes in enumerate(label_nodes):
        label = f"L{i}"
        labels.append(label)
        for node in nodes:
            g.add_labels(node, [label])
    return g, labels


@settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=directed_cases())
def test_directed_solver_matches_fixpoint_oracle(case):
    graph, labels = case
    expected = brute_force_directed_gst(graph, labels)
    result = DirectedGSTSolver(graph, labels).solve()
    assert result.optimal
    assert result.weight == pytest.approx(expected)
    result.tree.validate(graph, labels)
    assert result.tree.weight == pytest.approx(expected)
    assert result.stats.reopened == 0


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=directed_cases())
def test_symmetrized_digraph_equals_undirected(case):
    """Adding every reverse edge makes the directed optimum coincide
    with the undirected one (any undirected tree orients from its
    root) — a strong consistency check between the two solvers."""
    from repro import Graph
    from repro.core import PrunedDPPlusPlusSolver

    digraph, labels = case
    for u, v, w in list(digraph.edges()):
        if not digraph.has_edge(v, u):
            digraph.add_edge(v, u, w)
        elif digraph.edge_weight(v, u) != w:
            # Symmetrize weights to the minimum of the two directions.
            low = min(w, digraph.edge_weight(v, u))
            digraph.add_edge(v, u, low)
            digraph.add_edge(u, v, low)

    undirected = Graph()
    for _ in digraph.nodes():
        undirected.add_node()
    for u, v, w in digraph.edges():
        undirected.add_edge(u, v, w)
    for node in digraph.nodes():
        undirected.add_labels(node, digraph.labels_of(node))

    directed_result = DirectedGSTSolver(digraph, labels).solve()
    undirected_result = PrunedDPPlusPlusSolver(undirected, labels).solve()
    assert directed_result.optimal and undirected_result.optimal
    assert directed_result.weight == pytest.approx(undirected_result.weight)


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=directed_cases())
def test_directed_trace_sound(case):
    graph, labels = case
    expected = brute_force_directed_gst(graph, labels)
    result = DirectedGSTSolver(graph, labels).solve()
    for point in result.trace:
        assert point.lower_bound <= expected + 1e-9
        if point.best_weight != float("inf"):
            assert point.best_weight >= expected - 1e-9
    assert result.trace[-1].ratio == pytest.approx(1.0)
