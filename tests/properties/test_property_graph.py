"""Hypothesis properties of the Graph container and its operations."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Graph


@st.composite
def graph_specs(draw):
    n = draw(st.integers(1, 12))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(0.0, 50.0, allow_nan=False),
            ),
            max_size=25,
        )
    )
    labels = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.sampled_from("abcde")),
            max_size=15,
        )
    )
    return n, edges, labels


def build(spec) -> Graph:
    n, edges, labels = spec
    g = Graph()
    for _ in range(n):
        g.add_node()
    for u, v, w in edges:
        if u != v:
            g.add_edge(u, v, w)
    for node, label in labels:
        g.add_labels(node, [label])
    return g


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=graph_specs())
def test_construction_invariants_always_hold(spec):
    g = build(spec)
    g.validate()
    # Edge iteration count matches the counter.
    assert len(list(g.edges())) == g.num_edges
    # Degrees sum to twice the edge count.
    assert sum(g.degree(v) for v in g.nodes()) == 2 * g.num_edges
    # Group index agrees with per-node label sets.
    for label in g.all_labels():
        members = set(g.nodes_with_label(label))
        derived = {v for v in g.nodes() if g.has_label(v, label)}
        assert members == derived


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=graph_specs())
def test_copy_equivalence(spec):
    g = build(spec)
    clone = g.copy()
    clone.validate()
    assert list(clone.edges()) == list(g.edges())
    assert [clone.labels_of(v) for v in clone.nodes()] == [
        g.labels_of(v) for v in g.nodes()
    ]
    # Mutating the clone leaves the original untouched.
    clone.add_node(labels=["new"])
    assert clone.num_nodes == g.num_nodes + 1
    assert not g.has_label(0, "new") or "new" in g.labels_of(0)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=graph_specs(), data=st.data())
def test_subgraph_is_induced(spec, data):
    g = build(spec)
    keep = data.draw(
        st.lists(
            st.integers(0, g.num_nodes - 1), min_size=1, unique=True
        )
    )
    sub, mapping = g.subgraph(keep)
    sub.validate()
    assert sub.num_nodes == len(set(keep))
    kept = set(keep)
    expected_edges = sum(
        1 for u, v, _ in g.edges() if u in kept and v in kept
    )
    assert sub.num_edges == expected_edges
    for old, new in mapping.items():
        assert sub.labels_of(new) == g.labels_of(old)
    # Edge weights preserved through the mapping.
    for u, v, w in g.edges():
        if u in kept and v in kept:
            assert sub.edge_weight(mapping[u], mapping[v]) == w


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=graph_specs(), data=st.data())
def test_io_round_trip(spec, data, tmp_path_factory):
    from repro.graph.io import load_graph, save_graph

    g = build(spec)
    stem = str(tmp_path_factory.mktemp("io") / "g")
    save_graph(g, stem)
    loaded = load_graph(stem)
    assert loaded.num_nodes == g.num_nodes
    assert sorted(loaded.edges()) == sorted(g.edges())
    for v in g.nodes():
        assert loaded.labels_of(v) == frozenset(
            str(x) for x in g.labels_of(v)
        )
