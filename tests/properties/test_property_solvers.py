"""Hypothesis-driven cross-checks of every solver against brute force.

These are the strongest correctness tests in the suite: random small
graphs (random topology, weights, label placement, query size) where
the exact optimum is computable by exhaustive enumeration, checked
against all five exact solvers and the feasibility of both heuristics.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Graph
from repro.baselines import Banks1Solver, Banks2Solver
from repro.core import (
    BasicSolver,
    DPBFSolver,
    PrunedDPPlusPlusSolver,
    PrunedDPPlusSolver,
    PrunedDPSolver,
    brute_force_gst,
)

EXACT_SOLVERS = [
    BasicSolver,
    PrunedDPSolver,
    PrunedDPPlusSolver,
    PrunedDPPlusPlusSolver,
    DPBFSolver,
]


@st.composite
def labelled_graphs(draw, max_nodes=9, max_labels=3):
    """Connected weighted graph + feasible query over <= max_labels labels."""
    n = draw(st.integers(2, max_nodes))
    k = draw(st.integers(1, max_labels))
    # Spanning tree first (guarantees connectivity + feasibility).
    parents = [draw(st.integers(0, i - 1)) for i in range(1, n)]
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=n,
        )
    )
    weights = draw(
        st.lists(
            st.integers(1, 20),
            min_size=n - 1 + len(extra),
            max_size=n - 1 + len(extra),
        )
    )
    # Each label goes on 1..2 random nodes.
    label_nodes = [
        draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=2))
        for _ in range(k)
    ]

    g = Graph()
    for i in range(n):
        g.add_node()
    w = iter(weights)
    for child, parent in enumerate(parents, start=1):
        g.add_edge(child, parent, float(next(w)))
    for u, v in extra:
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, float(next(w)))
    labels = []
    for i, nodes in enumerate(label_nodes):
        label = f"L{i}"
        labels.append(label)
        for node in nodes:
            g.add_labels(node, [label])
    return g, labels


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=labelled_graphs())
def test_all_exact_solvers_agree_with_brute_force(case):
    graph, labels = case
    expected, _ = brute_force_gst(graph, labels)
    assert expected < float("inf")
    for solver_cls in EXACT_SOLVERS:
        result = solver_cls(graph, labels).solve()
        assert result.optimal, solver_cls.__name__
        assert result.weight == pytest.approx(expected), solver_cls.__name__
        result.tree.validate(graph, labels)
        assert result.tree.weight == pytest.approx(expected)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=labelled_graphs(max_nodes=10, max_labels=3))
def test_heuristics_feasible_and_bounded_below_by_optimum(case):
    graph, labels = case
    expected, _ = brute_force_gst(graph, labels)
    for solver_cls in (Banks1Solver, Banks2Solver):
        result = solver_cls(graph, labels).solve()
        assert result.tree is not None
        result.tree.validate(graph, labels)
        assert result.weight >= expected - 1e-9


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=labelled_graphs(max_nodes=9, max_labels=3))
def test_progressive_traces_sound(case):
    """Trace invariants hold on arbitrary inputs, not just fixtures."""
    graph, labels = case
    expected, _ = brute_force_gst(graph, labels)
    for solver_cls in (BasicSolver, PrunedDPPlusPlusSolver):
        result = solver_cls(graph, labels).solve()
        previous_ratio = float("inf")
        for point in result.trace:
            assert point.lower_bound <= expected + 1e-9
            if point.best_weight != float("inf"):
                assert point.best_weight >= expected - 1e-9
            assert point.ratio <= previous_ratio + 1e-9
            previous_ratio = point.ratio
        assert result.trace[-1].ratio == pytest.approx(1.0)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=labelled_graphs(max_nodes=9, max_labels=3), epsilon=st.sampled_from([0.25, 0.5, 1.0]))
def test_epsilon_contract(case, epsilon):
    """Anytime answers honour their advertised guarantee."""
    graph, labels = case
    expected, _ = brute_force_gst(graph, labels)
    result = PrunedDPPlusPlusSolver(graph, labels, epsilon=epsilon).solve()
    assert result.tree is not None
    result.tree.validate(graph, labels)
    assert result.weight <= (1.0 + epsilon) * expected + 1e-6
