"""Wire-protocol edge cases: the codec must never trust the peer.

Partial reads, oversized frames, garbage bytes, non-JSON payloads —
every violation must surface as a typed ProtocolError at the codec
boundary, never as a hang, an OOM, or a stray ``struct.error``.
"""

from __future__ import annotations

import json
import struct

import pytest

from repro.core.result import GSTResult, ProgressPoint, SearchStats
from repro.core.tree import SteinerTree
from repro.errors import ProtocolError
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    cancel_frame,
    dump_number,
    encode_frame,
    error_frame,
    hello_frame,
    load_number,
    progress_frame,
    query_frame,
    result_frame,
)

INF = float("inf")


def _decode_all(wire: bytes, **kwargs) -> list:
    return FrameDecoder(**kwargs).feed(wire)


class TestRoundTrip:
    def test_every_constructor_round_trips(self):
        tree = SteinerTree([(0, 1, 1.5), (1, 2, 2.5)])
        result = GSTResult(
            algorithm="PrunedDP++",
            labels=("a", "b"),
            tree=tree,
            weight=4.0,
            lower_bound=4.0,
            optimal=True,
            stats=SearchStats(states_popped=7, total_seconds=0.25),
        )
        frames = [
            hello_frame(
                graph={"nodes": 3, "edges": 2, "labels": 2},
                algorithm="pruneddp++",
                max_inflight=4,
            ),
            query_frame(1, ["a", "b"], epsilon=0.1, time_limit=2.0),
            progress_frame(1, ProgressPoint(0.1, 5.0, 2.5)),
            result_frame(1, result),
            error_frame(1, "rejected", "too big", estimated_states=10**9),
            cancel_frame(1),
        ]
        wire = b"".join(encode_frame(f) for f in frames)
        decoded = _decode_all(wire)
        assert decoded == frames

    def test_result_frame_carries_tree_and_bounds(self):
        tree = SteinerTree([(0, 1, 1.0)])
        result = GSTResult(
            algorithm="Basic",
            labels=("x",),
            tree=tree,
            weight=1.0,
            lower_bound=1.0,
            optimal=True,
            stats=SearchStats(),
        )
        frame = result_frame(3, result, status="ok")
        assert frame["tree"] == {"nodes": [0, 1], "edges": [[0, 1, 1.0]]}
        assert frame["weight"] == 1.0
        assert frame["optimal"] is True
        assert frame["status"] == "ok"

    def test_progress_frame_infinite_incumbent(self):
        """Pre-feasible progress (UB=inf) must survive JSON."""
        frame = progress_frame(1, ProgressPoint(0.05, INF, 3.0))
        (decoded,) = _decode_all(encode_frame(frame))
        assert decoded["best_weight"] == "inf"
        assert load_number(decoded["best_weight"]) == INF
        assert load_number(decoded["ratio"]) == INF

    def test_dump_load_number_conventions(self):
        assert dump_number(INF) == "inf"
        assert dump_number(2.5) == 2.5
        assert dump_number(None) is None
        assert load_number("inf") == INF
        assert load_number(None) is None
        assert load_number(2) == 2.0

    def test_query_frame_stringifies_labels(self):
        assert query_frame(1, [0, 1])["labels"] == ["0", "1"]


class TestPartialReads:
    def test_byte_at_a_time_delivery(self):
        """A TCP peer may deliver one byte per read; frames must still
        assemble exactly once each."""
        frames = [cancel_frame(i) for i in range(3)]
        wire = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        seen = []
        for i in range(len(wire)):
            seen.extend(decoder.feed(wire[i:i + 1]))
        assert seen == frames
        assert len(decoder) == 0

    def test_many_frames_in_one_chunk(self):
        frames = [cancel_frame(i) for i in range(10)]
        wire = b"".join(encode_frame(f) for f in frames)
        assert _decode_all(wire) == frames

    def test_split_inside_header(self):
        wire = encode_frame(cancel_frame(7))
        decoder = FrameDecoder()
        assert decoder.feed(wire[:2]) == []
        assert len(decoder) == 2
        assert decoder.feed(wire[2:]) == [cancel_frame(7)]

    def test_incomplete_frame_stays_buffered(self):
        wire = encode_frame(cancel_frame(7))
        decoder = FrameDecoder()
        assert decoder.feed(wire[:-1]) == []
        assert len(decoder) == len(wire) - 1


class TestRejection:
    def test_oversized_frame_rejected_on_encode(self):
        frame = error_frame(1, "internal", "x" * 256)
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(frame, max_frame_bytes=64)

    def test_oversized_frame_rejected_from_prefix_alone(self):
        """The guard fires on the 4-byte header before any payload is
        buffered — a hostile prefix cannot make the decoder allocate."""
        decoder = FrameDecoder(max_frame_bytes=1024)
        header = struct.pack(">I", 10 * 1024 * 1024)
        with pytest.raises(ProtocolError, match="frame length"):
            decoder.feed(header)  # not one payload byte provided

    def test_zero_length_frame_rejected(self):
        with pytest.raises(ProtocolError, match="frame length"):
            _decode_all(struct.pack(">I", 0))

    def test_garbage_bytes_mid_stream(self):
        """Random bytes after a valid frame decode to an absurd length
        or malformed JSON — either way a ProtocolError, never a hang."""
        decoder = FrameDecoder()
        good = encode_frame(cancel_frame(1))
        assert decoder.feed(good) == [cancel_frame(1)]
        with pytest.raises(ProtocolError):
            decoder.feed(b"\xff\xfe\xfd\xfc garbage after the frame")

    def test_non_json_payload(self):
        payload = b"this is not json\n"
        wire = struct.pack(">I", len(payload)) + payload
        with pytest.raises(ProtocolError, match="malformed"):
            _decode_all(wire)

    def test_non_object_json_payload(self):
        payload = json.dumps([1, 2, 3]).encode() + b"\n"
        wire = struct.pack(">I", len(payload)) + payload
        with pytest.raises(ProtocolError, match="JSON object"):
            _decode_all(wire)

    def test_missing_or_unknown_type(self):
        for obj in ({}, {"type": "launch_missiles"}):
            payload = json.dumps(obj).encode() + b"\n"
            wire = struct.pack(">I", len(payload)) + payload
            with pytest.raises(ProtocolError, match="type"):
                _decode_all(wire)

    def test_encode_refuses_unknown_type(self):
        with pytest.raises(ProtocolError, match="cannot encode"):
            encode_frame({"type": "nope"})

    def test_encode_refuses_unserializable_payload(self):
        with pytest.raises(ProtocolError, match="not JSON-serializable"):
            encode_frame({"type": "error", "blob": object()})

    def test_invalid_decoder_limit(self):
        with pytest.raises(ValueError):
            FrameDecoder(max_frame_bytes=0)


class TestHello:
    def test_hello_announces_version_and_limits(self):
        frame = hello_frame(
            graph={"nodes": 1, "edges": 0, "labels": 0},
            algorithm="basic",
            max_inflight=2,
            max_frame_bytes=4096,
        )
        assert frame["version"] == PROTOCOL_VERSION
        assert frame["max_inflight"] == 2
        assert frame["max_frame_bytes"] == 4096
        assert MAX_FRAME_BYTES >= 4096
