"""End-to-end tests for the streaming query server.

The server runs on a background thread with its own event loop; tests
talk to it through the real TCP stack with the blocking client —
the exact deployment shape of ``python -m repro serve``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

import repro.core.solver as solver_mod
from repro import solve_gst
from repro.errors import RemoteQueryError
from repro.graph import generators
from repro.server import GSTClient, GSTServer
from repro.server.protocol import query_frame

INF = float("inf")


class ServerHarness:
    """A GSTServer on a daemon thread, drained on close."""

    def __init__(self, index, **kwargs) -> None:
        self._index = index
        self._kwargs = kwargs
        self._ready = threading.Event()
        self._error: list = []
        self.server: GSTServer = None
        self.loop: asyncio.AbstractEventLoop = None
        self._stopped: asyncio.Event = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError(f"server failed to start: {self._error}")

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception as exc:  # pragma: no cover - harness diagnostics
            self._error.append(exc)
            self._ready.set()

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self.server = GSTServer(self._index, port=0, **self._kwargs)
        await self.server.start()
        self._ready.set()
        await self._stopped.wait()
        await self.server.drain()

    @property
    def port(self) -> int:
        return self.server.port

    def drain(self, grace=None) -> None:
        """Run a drain from the test thread; blocks until complete."""
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(grace), self.loop
        )
        future.result(timeout=30)

    def start_drain(self, grace=None):
        """Kick off a drain without waiting (for mid-drain assertions)."""
        return asyncio.run_coroutine_threadsafe(
            self.server.drain(grace), self.loop
        )

    def close(self) -> None:
        if self.loop is not None:
            self.loop.call_soon_threadsafe(self._stopped.set)
        self._thread.join(timeout=30)
        assert not self._thread.is_alive(), "server thread failed to exit"

    def __enter__(self) -> "ServerHarness":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _wait_until(predicate, timeout: float = 10.0, interval: float = 0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _terminal_frame(client: GSTClient, query_id) -> dict:
    """Read raw frames until ``query_id``'s terminal RESULT/ERROR.

    Tests that multiplex several queries on one blocking connection
    (unsupported by the public iterator API on purpose) read the wire
    directly through the client's decoder.
    """
    while True:
        frame = client._next_frame()
        if frame.get("id") == query_id and frame["type"] in ("result", "error"):
            return frame


@pytest.fixture
def graph():
    return generators.random_graph(
        150, 450, num_query_labels=6, label_frequency=5, seed=7
    )


@pytest.fixture
def hanging_pruneddp(monkeypatch):
    """Swap pruneddp++ for a solver that wedges until cancelled."""
    real = solver_mod.ALGORITHMS["pruneddp++"]

    class Hanging(real):
        def run_search(self, context, prepared=None):
            while not self.budget.cancelled():
                time.sleep(0.005)
            return super().run_search(context, prepared)

    monkeypatch.setitem(solver_mod.ALGORITHMS, "pruneddp++", Hanging)
    return Hanging


class TestStreaming:
    def test_progress_frames_before_result(self, graph):
        """The acceptance criterion: a query over real TCP yields >= 2
        PROGRESS frames with non-increasing UB/LB ratio, then RESULT."""
        labels = ["q0", "q1", "q2", "q3"]
        with ServerHarness(graph, algorithm="basic") as harness:
            with GSTClient("127.0.0.1", harness.port) as client:
                updates = list(client.solve_stream(labels))
        progress = [u for u in updates if not u.final]
        assert len(progress) >= 2
        # The stream is the paper's anytime curve: UB never increases,
        # LB never decreases, so the ratio is non-increasing.
        for earlier, later in zip(updates, updates[1:]):
            assert later.ratio <= earlier.ratio + 1e-12
            assert later.best_weight <= earlier.best_weight + 1e-12
            assert later.lower_bound >= earlier.lower_bound - 1e-12
        final = updates[-1]
        assert final.final and final.status == "ok"
        assert updates[:-1] == progress  # RESULT strictly last
        # The streamed answer matches an in-process exact solve.
        expected = solve_gst(graph, labels, algorithm="basic")
        assert final.best_weight == pytest.approx(expected.weight)
        assert final.result["optimal"] is True

    def test_hello_frame_describes_server(self, graph):
        with ServerHarness(graph, max_inflight=2) as harness:
            with GSTClient("127.0.0.1", harness.port) as client:
                hello = client.hello
        assert hello["graph"]["nodes"] == graph.num_nodes
        assert hello["max_inflight"] == 2

    def test_sequential_queries_on_one_connection(self, graph):
        with ServerHarness(graph, algorithm="basic") as harness:
            with GSTClient("127.0.0.1", harness.port) as client:
                first = client.solve(["q0", "q1"])
                second = client.solve(["q2", "q3"])
        assert first.final and second.final
        assert first.query_id != second.query_id

    def test_async_client(self, graph):
        labels = ["q0", "q1", "q2"]

        async def scenario():
            from repro.server import AsyncGSTClient

            async with GSTServer(graph, algorithm="basic") as server:
                client = await AsyncGSTClient.connect(
                    "127.0.0.1", server.port
                )
                updates = []
                async for update in client.solve_stream(labels):
                    updates.append(update)
                await client.close()
                return updates

        updates = asyncio.run(scenario())
        assert len(updates) >= 3 and updates[-1].final

    def test_epsilon_override_stops_early(self, graph):
        """A per-query epsilon terminates at a proven (1+eps) gap."""
        with ServerHarness(graph, algorithm="basic") as harness:
            with GSTClient("127.0.0.1", harness.port) as client:
                final = client.solve(["q0", "q1", "q2"], epsilon=0.5)
        assert final.ratio <= 1.5 + 1e-9


class TestErrors:
    def test_infeasible_query_is_typed_error(self, graph):
        with ServerHarness(graph) as harness:
            with GSTClient("127.0.0.1", harness.port) as client:
                with pytest.raises(RemoteQueryError) as excinfo:
                    client.solve(["q0", "no-such-label"])
        assert excinfo.value.code == "infeasible"

    def test_admission_rejection_is_typed_error(self, graph):
        from repro.service import AdmissionPolicy

        with ServerHarness(
            graph, admission=AdmissionPolicy(max_estimated_states=1)
        ) as harness:
            with GSTClient("127.0.0.1", harness.port) as client:
                with pytest.raises(RemoteQueryError) as excinfo:
                    client.solve(["q0", "q1", "q2"])
        assert excinfo.value.code == "rejected"
        assert excinfo.value.details.get("estimated_states", 0) > 1

    def test_bad_request_empty_labels(self, graph):
        with ServerHarness(graph) as harness:
            with GSTClient("127.0.0.1", harness.port) as client:
                client._send(query_frame(1, []))
                frame = _terminal_frame(client, 1)
        assert frame["type"] == "error"
        assert frame["code"] == "bad_request"

    def test_overloaded_beyond_max_inflight(self, graph, hanging_pruneddp):
        with ServerHarness(graph, max_inflight=1, max_workers=4) as harness:
            with GSTClient("127.0.0.1", harness.port) as client:
                client._send(query_frame(1, ["q0", "q1"]))
                assert _wait_until(
                    lambda: harness.server.stats.queries_received == 1
                )
                client._send(query_frame(2, ["q2", "q3"]))
                overloaded = _terminal_frame(client, 2)
                assert overloaded["type"] == "error"
                assert overloaded["code"] == "overloaded"
                # Unwedge query 1 so teardown is immediate.
                client.cancel(1)
                cancelled = _terminal_frame(client, 1)
                assert cancelled["type"] == "error"
                assert cancelled["code"] == "cancelled"


class TestCancellation:
    def test_client_disconnect_cancels_server_side_search(
        self, graph, hanging_pruneddp
    ):
        """The acceptance criterion: a vanished client must not leave a
        worker wedged — its token fires and the engine stops within the
        resilience pop bound."""
        with ServerHarness(graph, max_workers=1) as harness:
            client = GSTClient("127.0.0.1", harness.port)
            client._send(query_frame(1, ["q0", "q1"]))
            assert _wait_until(lambda: harness.server.inflight_queries == 1)
            client.close()  # vanish mid-query
            assert _wait_until(
                lambda: harness.server.inflight_queries == 0, timeout=10
            ), "server-side search was not cancelled after disconnect"
            assert harness.server.stats.queries_cancelled >= 1

    def test_cancel_frame_stops_query(self, graph, hanging_pruneddp):
        with ServerHarness(graph) as harness:
            with GSTClient("127.0.0.1", harness.port) as client:
                client._send(query_frame(1, ["q0", "q1"]))
                assert _wait_until(
                    lambda: harness.server.inflight_queries == 1
                )
                client.cancel(1)
                frame = _terminal_frame(client, 1)
        # The wedge was cancelled before any incumbent existed, so the
        # terminal frame is a typed cancellation error.
        assert frame["type"] == "error"
        assert frame["code"] == "cancelled"


class TestDrain:
    def test_drain_rejects_new_queries_and_cancels_inflight(
        self, graph, hanging_pruneddp
    ):
        with ServerHarness(graph) as harness:
            with GSTClient("127.0.0.1", harness.port) as client:
                client._send(query_frame(1, ["q0", "q1"]))
                assert _wait_until(
                    lambda: harness.server.inflight_queries == 1
                )
                drain_future = harness.start_drain(grace=0.2)
                assert _wait_until(lambda: harness.server.draining)
                client._send(query_frame(2, ["q2", "q3"]))
                frames = {}
                while len(frames) < 2:
                    frame = client._next_frame()
                    if frame["type"] in ("result", "error"):
                        frames[frame["id"]] = frame
                drain_future.result(timeout=30)
        # The new query was refused; the wedged one was cancelled by
        # the grace deadline instead of blocking the drain forever.
        assert frames[2]["type"] == "error"
        assert frames[2]["code"] == "draining"
        assert frames[1]["type"] == "error"
        assert frames[1]["code"] == "cancelled"

    def test_drain_flushes_trace_sink(self, graph, tmp_path):
        traces = str(tmp_path / "traces.jsonl")
        with ServerHarness(
            graph, algorithm="basic", trace_sink=traces
        ) as harness:
            with GSTClient("127.0.0.1", harness.port) as client:
                client.solve(["q0", "q1"])
            harness.drain()
            assert harness.server.executor.trace_sink.closed
        with open(traces, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert len(records) == 1
        assert records[0]["status"] == "ok"

    def test_drain_is_idempotent(self, graph):
        with ServerHarness(graph) as harness:
            harness.drain()
            harness.drain()
        assert harness.server.draining


class TestStatsAndMetrics:
    def test_stats_frame_matches_wire_observations(self, graph):
        """The no-drift criterion on the wire: the STATS frame's server
        counters and registry snapshot equal the frames this client
        actually observed — counted independently on the client side."""
        from repro.obs import instruments

        frames_counter = instruments.server_frames()
        baselines = {
            key: frames_counter.labels(direction=key[0], type=key[1]).value
            for key in (
                ("sent", "result"),
                ("sent", "progress"),
                ("received", "query"),
            )
        }

        queries = [["q0", "q1"], ["q2", "q3"], ["q0", "q4"]]
        with ServerHarness(graph, algorithm="basic") as harness:
            with GSTClient("127.0.0.1", harness.port) as client:
                observed_progress = observed_results = 0
                for labels in queries:
                    for update in client.solve_stream(labels):
                        if update.final:
                            observed_results += 1
                        else:
                            observed_progress += 1
                stats = client.stats()

        assert stats["type"] == "stats"
        server = stats["server"]
        assert server["queries_received"] == len(queries)
        assert server["results_sent"] == observed_results == len(queries)
        assert server["progress_frames_sent"] == observed_progress
        assert observed_progress >= 2
        assert server["stats_frames_sent"] == 1
        assert stats["inflight"] == 0

        # The registry snapshot carried by the frame tells the same
        # story as the client-side tally — exactly, not approximately.
        samples = {
            (s["labels"]["direction"], s["labels"]["type"]): s["value"]
            for s in stats["metrics"]["gst_server_frames_total"]["samples"]
        }
        deltas = {
            key: samples[key] - baselines[key] for key in baselines
        }
        assert deltas[("sent", "result")] == observed_results
        assert deltas[("sent", "progress")] == observed_progress
        assert deltas[("received", "query")] == len(queries)

    def test_server_stats_view_never_disagrees_with_registry(self, graph):
        """ServerStats is a thin view over gst_server_events_total, so
        the two can never drift: whatever the attribute reports is the
        registry child's delta since server construction."""
        from repro.obs import instruments

        events = instruments.server_events()
        with ServerHarness(graph, algorithm="basic") as harness:
            base = events.labels(event="results_sent").value
            with GSTClient("127.0.0.1", harness.port) as client:
                client.solve(["q0", "q1"])
            assert harness.server.stats.results_sent == 1
            assert events.labels(event="results_sent").value - base == 1

    def test_metrics_http_endpoint_serves_valid_exposition(self, graph):
        import urllib.request

        from repro.obs import parse_exposition

        with ServerHarness(
            graph, algorithm="basic", metrics_port=0
        ) as harness:
            assert harness.server.metrics_port not in (None, 0)
            with GSTClient("127.0.0.1", harness.port) as client:
                client.solve(["q0", "q1"])
            url = f"http://127.0.0.1:{harness.server.metrics_port}/metrics"
            with urllib.request.urlopen(url, timeout=10) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "text/plain"
                )
                text = response.read().decode("utf-8")
        families = parse_exposition(text)  # must be valid Prometheus text
        assert families["gst_queries_total"]["type"] == "counter"
        total = sum(v for _, _, v in families["gst_queries_total"]["samples"])
        assert total >= 1
        assert "gst_server_events_total" in families

    def test_metrics_endpoint_unknown_path_is_404(self, graph):
        import urllib.error
        import urllib.request

        with ServerHarness(graph, metrics_port=0) as harness:
            url = f"http://127.0.0.1:{harness.server.metrics_port}/nope"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=10)
            assert excinfo.value.code == 404


class TestConstruction:
    def test_process_isolation_rejected(self, graph):
        with pytest.raises(ValueError, match="thread"):
            GSTServer(graph, isolation="process")

    def test_executor_and_kwargs_are_exclusive(self, graph):
        from repro.service import QueryExecutor

        executor = QueryExecutor(graph)
        try:
            with pytest.raises(ValueError, match="not both"):
                GSTServer(graph, executor=executor, max_workers=2)
        finally:
            executor.shutdown()
