"""Budget semantics + the kwargs-passthrough regression suite.

The second half pins down the historical drift bug: every documented
keyword argument, passed through any public entry point, must reach the
search engine.  A spy engine records the kwargs it was constructed
with; each test drives one entry point and asserts the engine saw the
limits the caller asked for.
"""

from __future__ import annotations

import time

import pytest

import repro.core.algorithms as algorithms_mod
from repro.core import Budget, PrunedDPPlusPlusSolver, solve_gst
from repro.core.cache import PreparedGraph
from repro.core.dpbf import DPBFSolver
from repro.core.engine import SearchEngine
from repro.graph import generators
from repro.service import GraphIndex


@pytest.fixture
def graph():
    return generators.random_graph(
        40, 90, num_query_labels=5, label_frequency=3, seed=7
    )


class TestBudgetValue:
    def test_defaults(self):
        budget = Budget()
        assert budget.time_limit is None
        assert budget.epsilon == 0.0
        assert budget.max_states is None
        assert budget.on_limit == "return"
        assert budget.deadline is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"time_limit": -1.0},
            {"epsilon": -0.1},
            {"max_states": 0},
            {"max_states": -5},
            {"on_limit": "explode"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            Budget(**kwargs)

    def test_frozen(self):
        with pytest.raises(Exception):
            Budget().time_limit = 3.0  # type: ignore[misc]

    def test_replace(self):
        derived = Budget(epsilon=0.5).replace(time_limit=2.0)
        assert derived.time_limit == 2.0
        assert derived.epsilon == 0.5

    def test_coalesce_loose_kwargs_win(self):
        base = Budget(time_limit=10.0, epsilon=0.5, max_states=100)
        merged = Budget.coalesce(base, time_limit=2.0, epsilon=0.25)
        assert merged.time_limit == 2.0
        assert merged.epsilon == 0.25
        assert merged.max_states == 100  # untouched field survives
        assert merged.on_limit == "return"

    def test_coalesce_without_base(self):
        merged = Budget.coalesce(None, max_states=7, on_limit="raise")
        assert merged.max_states == 7
        assert merged.on_limit == "raise"
        assert merged.time_limit is None

    def test_coalesce_preserves_deadline(self):
        base = Budget().with_deadline(60.0)
        merged = Budget.coalesce(base, time_limit=1.0)
        assert merged.deadline == base.deadline

    def test_deadline_arithmetic(self):
        budget = Budget(time_limit=100.0).with_deadline(60.0)
        remaining = budget.remaining()
        assert remaining is not None and 0.0 < remaining <= 60.0
        assert not budget.expired()
        # The deadline clamps the per-query time limit.
        assert budget.effective_time_limit() <= 60.0

    def test_expired_deadline(self):
        budget = Budget().replace(deadline=time.perf_counter() - 1.0)
        assert budget.expired()
        assert budget.effective_time_limit() == 0.0

    def test_no_deadline_never_expires(self):
        budget = Budget(time_limit=0.0)
        assert not budget.expired()
        assert budget.effective_time_limit() == 0.0

    def test_negative_with_deadline_rejected(self):
        with pytest.raises(ValueError):
            Budget().with_deadline(-1.0)

    def test_with_deadline_keeps_earlier_when_tightening(self):
        """Outer 100s allowance, then nested 10s batch: 10s wins."""
        budget = Budget().with_deadline(100.0).with_deadline(10.0)
        remaining = budget.remaining()
        assert remaining is not None and remaining <= 10.0

    def test_with_deadline_keeps_earlier_when_loosening(self):
        """Outer 10s allowance, then nested 100s batch: a nested batch
        must not extend the allowance it inherited — 10s still wins."""
        budget = Budget().with_deadline(10.0).with_deadline(100.0)
        remaining = budget.remaining()
        assert remaining is not None and remaining <= 10.0

    def test_with_cancellation_round_trip(self):
        from repro.core.budget import CancellationToken

        token = CancellationToken()
        budget = Budget(time_limit=1.0).with_cancellation(token)
        assert budget.cancel_token is token
        assert not budget.cancelled()
        assert budget.engine_kwargs()["cancel_token"] is token
        token.cancel("because")
        assert budget.cancelled()
        assert token.reason == "because"
        assert budget.to_dict()["cancelled"] is True

    def test_coalesce_preserves_cancel_token(self):
        from repro.core.budget import CancellationToken

        token = CancellationToken()
        base = Budget().with_cancellation(token)
        merged = Budget.coalesce(base, time_limit=1.0)
        assert merged.cancel_token is token

    def test_engine_kwargs_keys(self):
        kwargs = Budget(time_limit=3.0, epsilon=0.1, max_states=9).engine_kwargs()
        assert kwargs == {
            "time_limit": 3.0,
            "epsilon": 0.1,
            "max_states": 9,
            "on_limit": "return",
            "cancel_token": None,
        }

    def test_to_dict_is_json_friendly(self):
        import json

        record = Budget(time_limit=1.0).with_deadline(5.0).to_dict()
        json.dumps(record)
        assert record["time_limit"] == 1.0
        assert record["deadline_remaining"] <= 5.0


# ----------------------------------------------------------------------
# Kwargs-passthrough regression: every entry point → the engine.
# ----------------------------------------------------------------------
@pytest.fixture
def engine_spy(monkeypatch):
    """Record the kwargs every SearchEngine is constructed with."""
    calls = []

    class SpyEngine(SearchEngine):
        def __init__(self, context, **kwargs):
            calls.append(dict(kwargs))
            super().__init__(context, **kwargs)

    monkeypatch.setattr(algorithms_mod, "SearchEngine", SpyEngine)
    return calls


LOOSE = dict(time_limit=5.0, epsilon=0.25, max_states=100_000, on_limit="raise")


def _assert_limits(call: dict) -> None:
    assert call["time_limit"] == 5.0
    assert call["epsilon"] == 0.25
    assert call["max_states"] == 100_000
    assert call["on_limit"] == "raise"


class TestKwargsReachEngine:
    def test_solver_class_loose_kwargs(self, graph, engine_spy):
        progress, feasible = [], []
        PrunedDPPlusPlusSolver(
            graph,
            ["q0", "q1"],
            on_progress=progress.append,
            on_feasible=feasible.append,
            progressive=True,
            **LOOSE,
        ).solve()
        (call,) = engine_spy
        _assert_limits(call)
        assert call["on_progress"] is not None
        assert call["on_feasible"] is not None
        assert call["progressive"] is True
        assert progress, "on_progress callback never fired"

    def test_solver_class_budget(self, graph, engine_spy):
        budget = Budget(**LOOSE)
        PrunedDPPlusPlusSolver(graph, ["q0", "q1"], budget=budget).solve()
        _assert_limits(engine_spy[0])

    def test_solver_class_budget_with_loose_override(self, graph, engine_spy):
        budget = Budget(time_limit=99.0, epsilon=0.25, max_states=100_000)
        PrunedDPPlusPlusSolver(
            graph, ["q0", "q1"], budget=budget, time_limit=5.0, on_limit="raise"
        ).solve()
        _assert_limits(engine_spy[0])

    def test_solve_gst_loose_kwargs(self, graph, engine_spy):
        solve_gst(graph, ["q0", "q1"], algorithm="pruneddp++", **LOOSE)
        _assert_limits(engine_spy[0])

    def test_solve_gst_budget(self, graph, engine_spy):
        solve_gst(graph, ["q0", "q1"], budget=Budget(**LOOSE))
        _assert_limits(engine_spy[0])

    def test_solve_gst_progressive_flag(self, graph, engine_spy):
        solve_gst(graph, ["q0", "q1"], algorithm="pruneddp", progressive=False)
        assert engine_spy[0]["progressive"] is False

    def test_prepared_graph_passthrough(self, graph, engine_spy):
        PreparedGraph(graph).solve(["q0", "q1"], **LOOSE)
        _assert_limits(engine_spy[0])

    def test_graph_index_passthrough(self, graph, engine_spy):
        GraphIndex(graph).solve(["q0", "q1"], **LOOSE)
        _assert_limits(engine_spy[0])

    def test_graph_index_budget(self, graph, engine_spy):
        GraphIndex(graph).solve(["q0", "q1"], budget=Budget(**LOOSE))
        _assert_limits(engine_spy[0])

    @pytest.mark.parametrize("algorithm", ["basic", "pruneddp", "pruneddp+"])
    def test_every_engine_algorithm(self, graph, engine_spy, algorithm):
        solve_gst(graph, ["q0", "q1"], algorithm=algorithm, **LOOSE)
        _assert_limits(engine_spy[0])

    def test_deadline_clamps_engine_time_limit(self, graph, engine_spy):
        budget = Budget(time_limit=100.0).with_deadline(10.0)
        GraphIndex(graph).solve(["q0", "q1"], budget=budget)
        assert engine_spy[0]["time_limit"] <= 10.0


class TestExpiredDeadlineRegression:
    """``remaining()`` must clamp at 0.0 — never report negative time.

    The historical bug: an already-passed deadline made ``remaining()``
    return a negative number, which admission control then multiplied
    into a negative allowance and reported in budgets' ``to_dict``.
    """

    def _expired_budget(self) -> Budget:
        return Budget().replace(deadline=time.perf_counter() - 5.0)

    def test_remaining_is_clamped_at_zero(self):
        budget = self._expired_budget()
        assert budget.remaining() == 0.0
        assert budget.expired()

    def test_to_dict_never_reports_negative_remaining(self):
        record = self._expired_budget().to_dict()
        assert record["deadline_remaining"] == 0.0

    def test_expired_deadline_entering_admission(self, graph):
        from repro.service import AdmissionPolicy
        from repro.service.resilience import AdmissionController

        budget = self._expired_budget()
        controller = AdmissionController(
            GraphIndex(graph), AdmissionPolicy(action="clamp")
        )
        decision = controller.assess(["q0", "q1"], budget)
        # No time left: the query cannot be admitted unclamped, and the
        # clamped budget must carry a *zero* time limit, not a negative
        # one (Budget would reject it) nor a negative allowance string.
        assert decision.action == "clamp"
        assert decision.budget is not None
        assert decision.budget.time_limit == 0.0
        assert "-" not in (decision.reason or "").split("allowance")[-1]

    def test_expired_deadline_rejecting_admission(self, graph):
        from repro.errors import QueryRejectedError
        from repro.service import AdmissionPolicy
        from repro.service.resilience import AdmissionController

        controller = AdmissionController(
            GraphIndex(graph), AdmissionPolicy(action="reject")
        )
        with pytest.raises(QueryRejectedError):
            controller.admit(["q0", "q1"], self._expired_budget())

    def test_expired_deadline_entering_engine(self, graph, engine_spy):
        budget = self._expired_budget()
        # The engine-facing kwargs carry a zero (not negative) limit.
        assert budget.engine_kwargs()["time_limit"] == 0.0
        PrunedDPPlusPlusSolver(graph, ["q0", "q1"], budget=budget).solve()
        assert engine_spy[0]["time_limit"] == 0.0

    def test_expired_deadline_fail_fasts_at_index(self, graph):
        from repro.errors import LimitExceededError

        with pytest.raises(LimitExceededError):
            GraphIndex(graph).solve(["q0", "q1"], budget=self._expired_budget())


class TestDPBFBudget:
    """DPBF has no shared engine; its budget is honored internally."""

    def test_max_states_interrupts(self, graph):
        result = DPBFSolver(graph, ["q0", "q1"], budget=Budget(max_states=1)).solve()
        assert not result.optimal

    def test_loose_kwargs_still_work(self, graph):
        solver = DPBFSolver(graph, ["q0", "q1"], time_limit=5.0, max_states=123)
        assert solver.budget.time_limit == 5.0
        assert solver.budget.max_states == 123

    def test_matches_progressive_optimum(self, graph):
        dpbf = DPBFSolver(graph, ["q0", "q2"]).solve()
        pruned = PrunedDPPlusPlusSolver(graph, ["q0", "q2"]).solve()
        assert dpbf.weight == pytest.approx(pruned.weight)
