"""The durability layer's contract: checkpoint, crash, resume, certify.

Three layers of guarantee, each tested against the real engine:

* **Checkpoint round-trip** — an engine checkpoint serializes the full
  frontier (queue, pending, settled store, incumbent, global bound) and
  a restored engine finishes with exactly the uninterrupted run's
  answer, on both the CSR and the legacy loop.
* **Fail-closed corruption handling** — truncated files, flipped CRC
  bytes, version skew, and wrong-graph fingerprints each raise their
  typed :class:`~repro.errors.StoreError` subclass, and the execution
  path falls back to a cold solve instead of wedging.
* **Crash containment** — a process worker SIGKILLed mid-search is
  respawned, resumes from its latest checkpoint, and delivers a
  certified answer identical in weight to an uninterrupted run; memory
  watchdog and hard-timeout kills surface as retryable
  :class:`~repro.errors.WorkerCrashedError`.
"""

from __future__ import annotations

import os
import struct

import pytest

from repro.core.budget import Budget, CancellationToken
from repro.errors import (
    StoreCorruptError,
    StoreFingerprintError,
    StoreVersionError,
    WorkerCrashedError,
)
from repro.graph import generators
from repro.service import (
    Checkpointer,
    GraphIndex,
    ProcessWorkerPool,
    QueryExecutor,
    WorkerPolicy,
    checkpointed_execute,
    read_checkpoint,
    resume_query,
    write_checkpoint,
)
from repro.service.durability import checkpoint_meta, checkpoint_path
from repro.verify.certify import certify_result

LABELS = ("q0", "q1", "q2", "q3", "q4")


@pytest.fixture(scope="module")
def graph():
    # Big enough that a 5-label query pops >1000 states (the engine
    # checks limits every 256 pops, so anything smaller can prove
    # optimality before an interruption ever lands): room for
    # interruption, checkpoint cadence, and resume to all matter.
    return generators.random_graph(
        400, 1200, num_query_labels=6, label_frequency=8, seed=7
    )


@pytest.fixture(scope="module")
def index(graph):
    return GraphIndex(graph)


@pytest.fixture(scope="module")
def reference(index):
    """The uninterrupted run every resumed answer must match."""
    outcome = index.execute(LABELS, algorithm="pruneddp++")
    assert outcome.ok and outcome.result.optimal
    return outcome.result


def _interrupt(index, tmp_path, *, algorithm="pruneddp++", max_states=150):
    """Run until ``max_states`` with a tight cadence; return the path."""
    policy = WorkerPolicy(checkpoint_every_pops=25, checkpoint_every_seconds=None)
    outcome = checkpointed_execute(
        index,
        LABELS,
        algorithm=algorithm,
        budget=Budget(max_states=max_states, on_limit="return"),
        checkpoint_dir=str(tmp_path),
        policy=policy,
    )
    assert outcome.ok
    assert not outcome.result.optimal, "query must be interrupted mid-search"
    assert outcome.trace.checkpoints >= 1
    path = checkpoint_path(str(tmp_path), index.snapshot.fingerprint, LABELS)
    assert os.path.exists(path)
    return path


# ----------------------------------------------------------------------
# Checkpoint / resume equivalence
# ----------------------------------------------------------------------
class TestResumeEquivalence:
    def test_resume_matches_uninterrupted_run(self, index, reference, tmp_path):
        path = _interrupt(index, tmp_path)
        outcome = resume_query(index, path)
        assert outcome.ok
        assert outcome.result.optimal
        assert outcome.result.weight == pytest.approx(reference.weight)
        assert outcome.trace.resumed_from == path
        # A proven-optimal finish discards its checkpoint.
        assert not os.path.exists(path)

    def test_resumed_answer_certifies(self, graph, index, tmp_path):
        path = _interrupt(index, tmp_path)
        outcome = resume_query(index, path)
        certificate = certify_result(graph, outcome.result, labels=LABELS)
        assert certificate.ok, certificate

    def test_resume_at_random_pop_counts(self, index, reference, tmp_path):
        # Kill the search at assorted depths; every resume must converge
        # to the same optimal weight.
        for i, max_states in enumerate((40, 90, 260)):
            sub = tmp_path / f"cut{i}"
            sub.mkdir()
            path = _interrupt(index, sub, max_states=max_states)
            outcome = resume_query(index, path)
            assert outcome.ok and outcome.result.optimal
            assert outcome.result.weight == pytest.approx(reference.weight)

    def test_resume_is_cumulative_not_cold(self, index, reference, tmp_path):
        path = _interrupt(index, tmp_path, max_states=150)
        outcome = resume_query(index, path)
        # Counters are cumulative across the interruption: the resumed
        # total matches the uninterrupted run, so no work was redone.
        assert (
            outcome.result.stats.states_popped
            == reference.stats.states_popped
        )

    def test_legacy_loop_round_trip(self, graph, reference, tmp_path):
        # The legacy (non-CSR) engine loop keeps tuple state keys; the
        # checkpoint normalizes them to packed ints and restore must
        # repack them. basic runs legacy when the snapshot is absent —
        # simplest equivalent: checkpoint+restore through the engine
        # API directly on a fresh context.
        from repro.core.algorithms import PrunedDPPlusPlusSolver

        solver = PrunedDPPlusPlusSolver(
            graph, LABELS, budget=Budget(max_states=120, on_limit="return")
        )
        context = solver.build_context()
        context.snapshot = None  # force the legacy loop
        prepared = solver.prepare(context)
        meta = checkpoint_meta("fp", LABELS, "pruneddp++")
        path = str(tmp_path / "legacy.ckpt")
        solver.checkpointer = Checkpointer(
            path, meta, every_pops=25, every_seconds=None
        )
        partial = solver.run_search(context, prepared)
        assert not partial.optimal
        _, state = read_checkpoint(path)

        resumed = PrunedDPPlusPlusSolver(graph, LABELS, restore_state=state)
        context2 = resumed.build_context()
        context2.snapshot = None
        result = resumed.run_search(context2, resumed.prepare(context2))
        assert result.optimal
        assert result.weight == pytest.approx(reference.weight)

    def test_cross_loop_restore(self, graph, reference, tmp_path):
        # A checkpoint taken on the legacy loop restores onto the CSR
        # loop (and vice versa): keys are stored packed, repacked per
        # target loop.
        from repro.core.algorithms import PrunedDPPlusPlusSolver

        solver = PrunedDPPlusPlusSolver(
            graph, LABELS, budget=Budget(max_states=120, on_limit="return")
        )
        context = solver.build_context()
        context.snapshot = None
        meta = checkpoint_meta("fp", LABELS, "pruneddp++")
        path = str(tmp_path / "cross.ckpt")
        solver.checkpointer = Checkpointer(
            path, meta, every_pops=25, every_seconds=None
        )
        solver.run_search(context, solver.prepare(context))
        _, state = read_checkpoint(path)

        resumed = PrunedDPPlusPlusSolver(graph, LABELS, restore_state=state)
        result = resumed.solve()  # CSR loop: snapshot left in place
        assert result.optimal
        assert result.weight == pytest.approx(reference.weight)


# ----------------------------------------------------------------------
# Corruption: typed errors + cold-solve fallback
# ----------------------------------------------------------------------
class TestCheckpointCorruption:
    def _checkpoint(self, index, tmp_path):
        return _interrupt(index, tmp_path)

    def test_truncated_file(self, index, tmp_path):
        path = self._checkpoint(index, tmp_path)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])
        with pytest.raises(StoreCorruptError):
            read_checkpoint(path)

    def test_flipped_crc_byte(self, index, tmp_path):
        path = self._checkpoint(index, tmp_path)
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF  # flip a payload byte: CRC no longer matches
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(StoreCorruptError):
            read_checkpoint(path)

    def test_version_skew(self, index, tmp_path):
        path = self._checkpoint(index, tmp_path)
        meta, state = read_checkpoint(path)
        meta["checkpoint_version"] = 999
        write_checkpoint(path, meta, state)
        with pytest.raises(StoreVersionError):
            read_checkpoint(path)

    def test_container_version_skew(self, index, tmp_path):
        path = self._checkpoint(index, tmp_path)
        data = bytearray(open(path, "rb").read())
        # Bump the container format version in the 12-byte header.
        data[8:12] = struct.pack("<I", 999)
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(StoreVersionError):
            read_checkpoint(path)

    def test_fingerprint_mismatch(self, index, tmp_path):
        path = self._checkpoint(index, tmp_path)
        with pytest.raises(StoreFingerprintError):
            read_checkpoint(path, expect_fingerprint="not-this-graph")
        # And resume_query, which always binds to the live index, must
        # refuse a checkpoint rebound to another graph.
        meta, state = read_checkpoint(path)
        meta["fingerprint"] = "deadbeef" * 8
        write_checkpoint(path, meta, state)
        with pytest.raises(StoreFingerprintError):
            resume_query(index, path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StoreCorruptError):
            read_checkpoint(str(tmp_path / "nope.ckpt"))

    @pytest.mark.parametrize(
        "corrupt",
        ["truncate", "crc", "version", "fingerprint"],
        ids=["truncated", "crc-flip", "version-skew", "wrong-graph"],
    )
    def test_cold_solve_fallback(self, index, reference, tmp_path, corrupt):
        # Every corruption mode falls back to a *cold solve* through
        # checkpointed_execute: the broken file is removed, the query
        # still answers, and nothing was "resumed".
        path = self._checkpoint(index, tmp_path)
        if corrupt == "truncate":
            data = open(path, "rb").read()
            with open(path, "wb") as fh:
                fh.write(data[: len(data) // 2])
        elif corrupt == "crc":
            data = bytearray(open(path, "rb").read())
            data[-1] ^= 0xFF
            with open(path, "wb") as fh:
                fh.write(bytes(data))
        elif corrupt == "version":
            meta, state = read_checkpoint(path)
            meta["checkpoint_version"] = 999
            write_checkpoint(path, meta, state)
        else:
            meta, state = read_checkpoint(path)
            meta["fingerprint"] = "deadbeef" * 8
            write_checkpoint(path, meta, state)
        outcome = checkpointed_execute(
            index, LABELS, algorithm="pruneddp++", checkpoint_dir=str(tmp_path)
        )
        assert outcome.ok
        assert outcome.trace.resumed_from is None
        assert outcome.result.optimal
        assert outcome.result.weight == pytest.approx(reference.weight)


# ----------------------------------------------------------------------
# Checkpointer mechanics
# ----------------------------------------------------------------------
class TestCheckpointer:
    def test_atomic_write_leaves_no_tmp(self, index, tmp_path):
        path = _interrupt(index, tmp_path)
        assert os.listdir(str(tmp_path)) == [os.path.basename(path)]

    def test_optimal_run_discards_checkpoint(self, index, tmp_path):
        outcome = checkpointed_execute(
            index,
            LABELS,
            algorithm="pruneddp++",
            checkpoint_dir=str(tmp_path),
            policy=WorkerPolicy(
                checkpoint_every_pops=25, checkpoint_every_seconds=None
            ),
        )
        assert outcome.ok and outcome.result.optimal
        assert outcome.trace.checkpoints >= 1
        assert os.listdir(str(tmp_path)) == []

    def test_cancellation_forces_final_checkpoint(self, index, tmp_path):
        token = CancellationToken()
        seen = []

        def on_write(ckpt):
            seen.append(ckpt.written)
            if len(seen) == 1:
                token.cancel("test cut")

        outcome = checkpointed_execute(
            index,
            LABELS,
            algorithm="pruneddp++",
            budget=Budget(cancel_token=token),
            checkpoint_dir=str(tmp_path),
            policy=WorkerPolicy(
                checkpoint_every_pops=25, checkpoint_every_seconds=None
            ),
            on_write=on_write,
        )
        # The cancellation path writes one final forced checkpoint on
        # top of the cadence write that triggered it.
        assert outcome.trace.checkpoints >= 2
        path = checkpoint_path(
            str(tmp_path), index.snapshot.fingerprint, LABELS
        )
        assert os.path.exists(path)

    def test_dpbf_runs_without_durability(self, index, tmp_path):
        # Non-progressive baselines can't checkpoint; they still run.
        outcome = checkpointed_execute(
            index, LABELS, algorithm="dpbf", checkpoint_dir=str(tmp_path)
        )
        assert outcome.ok
        assert outcome.trace.checkpoints == 0

    def test_bad_cadence_rejected(self, tmp_path):
        meta = checkpoint_meta("fp", LABELS, "basic")
        with pytest.raises(ValueError):
            Checkpointer(str(tmp_path / "x"), meta, every_pops=0)
        with pytest.raises(ValueError):
            Checkpointer(str(tmp_path / "x"), meta, every_seconds=0.0)


# ----------------------------------------------------------------------
# Process isolation
# ----------------------------------------------------------------------
class TestProcessIsolation:
    def test_basic_delivery(self, index, reference, tmp_path):
        pool = ProcessWorkerPool(index, checkpoint_dir=str(tmp_path))
        try:
            outcome = pool.execute(LABELS, algorithm="pruneddp++")
        finally:
            pool.shutdown()
        assert outcome.ok
        assert outcome.result.weight == pytest.approx(reference.weight)
        assert outcome.trace.worker_restarts == 0

    def test_kill_dash_nine_resumes_and_certifies(
        self, graph, index, reference, tmp_path
    ):
        # The acceptance criterion: SIGKILL a worker mid-search; the
        # pool respawns it, the respawn resumes from the last
        # checkpoint, and the final answer is certified identical in
        # weight to the uninterrupted run.
        policy = WorkerPolicy(
            checkpoint_every_pops=25,
            checkpoint_every_seconds=None,
            chaos_kill_after_checkpoints=2,
        )
        pool = ProcessWorkerPool(
            index, checkpoint_dir=str(tmp_path), policy=policy
        )
        try:
            outcome = pool.execute(LABELS, algorithm="pruneddp++")
        finally:
            pool.shutdown()
        assert outcome.ok
        assert outcome.trace.worker_restarts >= 1
        assert outcome.trace.resumed_from is not None
        assert outcome.result.optimal
        assert outcome.result.weight == pytest.approx(reference.weight)
        certificate = certify_result(graph, outcome.result, labels=LABELS)
        assert certificate.ok, certificate

    def test_restart_budget_exhausts_to_typed_error(self, index, tmp_path):
        # A worker that dies before it can even checkpoint (cadence
        # never fires) crashes identically on every respawn; the pool
        # must give up after max_restarts with a typed error.
        policy = WorkerPolicy(
            checkpoint_every_pops=1,
            checkpoint_every_seconds=None,
            chaos_kill_after_checkpoints=1,
            max_restarts=0,
        )
        pool = ProcessWorkerPool(
            index, checkpoint_dir=str(tmp_path), policy=policy
        )
        try:
            outcome = pool.execute(LABELS, algorithm="pruneddp++")
        finally:
            pool.shutdown()
        assert not outcome.ok
        assert isinstance(outcome.error, WorkerCrashedError)
        assert outcome.trace.worker_restarts == 1  # the one failed respawn

    def test_memory_watchdog_checkpoint_then_kill(self, index, tmp_path):
        policy = WorkerPolicy(
            max_rss_mb=1.0,  # absurd: trips on the first RSS sample
            kill_grace_seconds=5.0,
            checkpoint_every_pops=25,
            checkpoint_every_seconds=None,
        )
        pool = ProcessWorkerPool(
            index, checkpoint_dir=str(tmp_path), policy=policy
        )
        try:
            outcome = pool.execute(LABELS, algorithm="pruneddp++")
        finally:
            pool.shutdown()
        assert not outcome.ok
        assert isinstance(outcome.error, WorkerCrashedError)
        assert outcome.error.reason == "memory watchdog"
        assert outcome.trace.watchdog_kills == 1

    def test_watchdog_crash_is_retryable_through_ladder(self, index, tmp_path):
        # WorkerCrashedError is retryable: the executor's retry ladder
        # turns a watchdog kill into a degraded-but-answered query.
        from repro.service.durability import _error_outcome
        from repro.service.resilience import retryable

        crashed = _error_outcome(
            LABELS, "pruneddp++", 0, WorkerCrashedError("boom")
        )
        assert retryable(crashed)

    def test_hard_timeout_contains_hang(self, index, tmp_path):
        import time as _t

        policy = WorkerPolicy(
            hard_timeout_seconds=0.3,
            poll_interval=0.02,
            checkpoint_every_pops=None,
            checkpoint_every_seconds=None,
        )
        pool = ProcessWorkerPool(index, checkpoint_dir=None, policy=policy)
        started = _t.monotonic()
        try:
            # A query this size takes ~1s in-process; the deadline must
            # cut it off (or it finishes faster — then it delivered,
            # which is also a pass for containment purposes).
            outcome = pool.execute(
                LABELS, algorithm="basic", budget=Budget(time_limit=30.0)
            )
        finally:
            pool.shutdown()
        elapsed = _t.monotonic() - started
        assert elapsed < 10.0
        if not outcome.ok:
            assert isinstance(outcome.error, WorkerCrashedError)
            assert outcome.error.reason == "hard kill deadline"

    def test_executor_process_isolation_batch(self, index, reference, tmp_path):
        with QueryExecutor(
            index,
            max_workers=2,
            isolation="process",
            checkpoint_dir=str(tmp_path),
        ) as executor:
            outcomes = executor.run_batch([LABELS, ("q0", "q1")])
        assert all(o.ok for o in outcomes)
        assert outcomes[0].result.weight == pytest.approx(reference.weight)

    def test_executor_rejects_unknown_isolation(self, index):
        with pytest.raises(ValueError):
            QueryExecutor(index, isolation="fiber")


# ----------------------------------------------------------------------
# Executor shutdown satellite
# ----------------------------------------------------------------------
class TestShutdownCancelsPending:
    def test_pending_futures_cancelled_on_unclean_shutdown(self, index):
        import threading

        release = threading.Event()
        started = threading.Event()

        executor = QueryExecutor(index, max_workers=1)
        # Occupy the single worker so later submissions stay queued.
        blocker = executor._pool.submit(
            lambda: (started.set(), release.wait(10.0))
        )
        started.wait(5.0)
        pending = [executor.submit(LABELS) for _ in range(4)]
        executor.shutdown(wait=False)
        release.set()
        blocker.result(5.0)
        # The documented guarantee: not-yet-started futures resolve
        # cancelled instead of lingering until interpreter exit.
        assert all(f.cancelled() for f in pending)

    def test_clean_shutdown_still_drains(self, index):
        executor = QueryExecutor(index, max_workers=1)
        future = executor.submit(("q0", "q1"))
        executor.shutdown(wait=True)
        assert future.result(5.0).ok
