"""QueryExecutor: batches, isolation, deadlines, ordering, threads."""

from __future__ import annotations

import json
import random
import threading
import time

import pytest

import repro.core.solver as solver_mod
from repro.core import PrunedDPPlusPlusSolver
from repro.core.budget import CancellationToken
from repro.errors import (
    InfeasibleQueryError,
    LimitExceededError,
    QueryCancelledError,
)
from repro.graph import generators
from repro.service import Budget, GraphIndex, QueryExecutor, TraceSink


@pytest.fixture
def graph():
    return generators.random_graph(
        60, 130, num_query_labels=6, label_frequency=4, seed=33
    )


@pytest.fixture
def index(graph):
    return GraphIndex(graph)


class TestBatchBasics:
    def test_accepts_raw_graph(self, graph):
        with QueryExecutor(graph, max_workers=2) as executor:
            outcomes = executor.run_batch([["q0", "q1"]])
        assert outcomes[0].ok

    def test_mixed_feasible_infeasible_batch(self, index):
        queries = [
            ["q0", "q1"],            # feasible
            ["q0", "no-such-label"], # infeasible: unknown label
            ["q2", "q3"],            # feasible
        ]
        with QueryExecutor(index, max_workers=3) as executor:
            outcomes = executor.run_batch(queries)
        assert [outcome.ok for outcome in outcomes] == [True, False, True]
        assert isinstance(outcomes[1].error, InfeasibleQueryError)
        assert outcomes[1].trace.status == "infeasible"
        # The failure stayed isolated: neighbours solved to optimality.
        assert outcomes[0].result.optimal and outcomes[2].result.optimal

    def test_deterministic_input_ordering(self, index):
        queries = [["q%d" % (i % 6), "q%d" % ((i + 1) % 6)] for i in range(24)]
        with QueryExecutor(index, max_workers=8) as executor:
            outcomes = executor.run_batch(queries)
        assert [outcome.query_id for outcome in outcomes] == list(range(24))
        assert [list(outcome.labels) for outcome in outcomes] == queries

    def test_map_returns_weights_and_none(self, index):
        with QueryExecutor(index, max_workers=2) as executor:
            weights = executor.map([["q0", "q1"], ["ghost"]])
        assert weights[0] is not None and weights[0] >= 0.0
        assert weights[1] is None

    def test_submit_future_isolation(self, index):
        with QueryExecutor(index) as executor:
            future = executor.submit(["ghost"], query_id="f1")
            outcome = future.result()
        assert not outcome.ok  # the error rides the outcome, not the future
        assert outcome.query_id == "f1"

    def test_submit_after_shutdown_raises(self, index):
        executor = QueryExecutor(index)
        executor.shutdown()
        with pytest.raises(RuntimeError):
            executor.submit(["q0"])

    def test_invalid_max_workers(self, index):
        with pytest.raises(ValueError):
            QueryExecutor(index, max_workers=0)


class TestDeadlines:
    def test_already_expired_deadline_skips_whole_batch(self, index):
        expired = Budget().replace(deadline=time.perf_counter() - 1.0)
        with QueryExecutor(index, max_workers=2) as executor:
            outcomes = executor.run_batch([["q0", "q1"]] * 6, budget=expired)
        assert all(not outcome.ok for outcome in outcomes)
        assert all(
            isinstance(outcome.error, LimitExceededError) for outcome in outcomes
        )
        assert {outcome.trace.status for outcome in outcomes} == {"skipped"}

    def test_deadline_expiry_mid_batch(self, index):
        # One worker drains 150 queries against a ~10ms allowance: the
        # head of the queue may run, the tail must be skipped, and the
        # outcomes still come back complete and in order.
        queries = [["q0", "q1", "q2", "q3"]] * 150
        with QueryExecutor(index, max_workers=1) as executor:
            outcomes = executor.run_batch(queries, deadline=0.01)
        statuses = [outcome.trace.status for outcome in outcomes]
        assert len(outcomes) == len(queries)
        assert set(statuses) <= {"ok", "skipped"}
        assert "skipped" in statuses
        # Skips are real outcomes, not exceptions out of the batch.
        for outcome in outcomes:
            if outcome.trace.status == "skipped":
                assert isinstance(outcome.error, LimitExceededError)

    def test_deadline_clamps_time_limit(self, index):
        budget = Budget(time_limit=100.0).with_deadline(10.0)
        assert budget.effective_time_limit() <= 10.0
        with QueryExecutor(index) as executor:
            outcomes = executor.run_batch([["q0", "q1"]], budget=budget)
        assert outcomes[0].ok


class TestSharedIndexThreadSafety:
    def test_stress_many_threads_one_index(self, index):
        rng = random.Random(99)
        pool = ["q0", "q1", "q2", "q3", "q4", "q5"]
        queries = [rng.sample(pool, rng.randint(2, 3)) for _ in range(40)]
        with QueryExecutor(index, max_workers=8) as executor:
            outcomes = executor.run_batch(queries)
        assert all(outcome.ok for outcome in outcomes)
        # Concurrency must not change answers: spot-check against the
        # sequential cold solver.
        for outcome in outcomes[::8]:
            cold = PrunedDPPlusPlusSolver(index.graph, outcome.labels).solve()
            assert outcome.result.weight == pytest.approx(cold.weight)
        # All workers shared one cache: at most one miss per label.
        info = index.cache_info()
        assert info["misses"] <= len(pool) * 2  # benign double-compute races
        assert info["hits"] > 0


class TestRunBatchFutureLeak:
    def test_midloop_submit_failure_cancels_enqueued_futures(
        self, index, monkeypatch
    ):
        """Regression: a submit that raises partway through run_batch
        used to abandon the already-enqueued futures.  They must be
        cancelled and the caller must get one clean error."""
        gate = threading.Event()
        real = solver_mod.ALGORITHMS["pruneddp++"]

        class Gated(real):
            def run_search(self, context, prepared=None):
                gate.wait(timeout=10.0)
                return super().run_search(context, prepared)

        monkeypatch.setitem(solver_mod.ALGORITHMS, "pruneddp++", Gated)
        executor = QueryExecutor(index, max_workers=1)
        enqueued = []
        real_submit = executor.submit

        def flaky_submit(*args, **kwargs):
            if len(enqueued) == 2:
                raise MemoryError("injected submit failure")
            future = real_submit(*args, **kwargs)
            enqueued.append(future)
            return future

        monkeypatch.setattr(executor, "submit", flaky_submit)
        try:
            with pytest.raises(RuntimeError) as info:
                executor.run_batch([["q0", "q1"]] * 3)
            assert "2 of 3" in str(info.value)
            assert isinstance(info.value.__cause__, MemoryError)
            # The first future occupies the only worker; the second sat
            # queued behind it and must have been cancelled, not leaked.
            assert enqueued[1].cancelled()
        finally:
            gate.set()
            executor.shutdown()


class TestOnLimitRaise:
    def test_raise_mode_error_is_isolated_per_query(self, index):
        """``on_limit='raise'`` through the service path: the limit
        error rides the heavy query's outcome; the sibling sharing the
        same batch budget still solves to optimality."""
        budget = Budget(max_states=1, on_limit="raise")
        queries = [
            ["q0", "q1", "q2", "q3"],  # hundreds of pops: hits the check
            ["q0", "q1"],              # finishes before the first check
        ]
        with QueryExecutor(index, max_workers=2, algorithm="basic") as executor:
            outcomes = executor.run_batch(queries, budget=budget)
        heavy, light = outcomes
        assert not heavy.ok
        assert isinstance(heavy.error, LimitExceededError)
        assert heavy.trace.status == "error"
        assert light.ok and light.result.optimal


class TestBatchCancellation:
    def test_precancelled_batch_returns_cancelled_outcomes(self, index):
        token = CancellationToken()
        token.cancel("caller gave up")
        with QueryExecutor(index, max_workers=2) as executor:
            outcomes = executor.run_batch([["q0", "q1"]] * 5, cancel_token=token)
        assert len(outcomes) == 5
        assert {o.trace.status for o in outcomes} == {"cancelled"}
        assert all(isinstance(o.error, QueryCancelledError) for o in outcomes)
        # Nothing was searched: cancellation beat the first pop.
        assert all(o.result is None for o in outcomes)

    def test_token_on_budget_reaches_submit_path(self, index):
        token = CancellationToken()
        with QueryExecutor(index) as executor:
            outcome = executor.submit(["q0", "q1"], cancel_token=token).result()
        assert outcome.ok  # never cancelled: the solve ran normally


class TestTraceStreaming:
    def test_jsonl_sink_receives_every_trace(self, index, tmp_path):
        path = str(tmp_path / "traces.jsonl")
        queries = [["q0", "q1"], ["ghost"], ["q2", "q3"]]
        with TraceSink(path) as sink:
            with QueryExecutor(index, max_workers=3, trace_sink=sink) as executor:
                executor.run_batch(queries)
            assert sink.count == len(queries)
        with open(path, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert len(records) == len(queries)
        by_id = {record["query_id"]: record for record in records}
        assert by_id[0]["status"] == "ok"
        assert by_id[1]["status"] == "infeasible"
        assert set(by_id[0]["stages"]) == {
            "context_build",
            "bounds_build",
            "search",
            "feasible",
        }

class TestProgressThreading:
    """on_progress flows executor -> engine: any embedder can observe
    the anytime UB/LB stream, not just an in-process solve_gst call."""

    def test_submit_streams_monotone_progress(self, index):
        points = []
        with QueryExecutor(index, max_workers=1) as executor:
            outcome = executor.submit(
                ["q0", "q1", "q2"], algorithm="basic", on_progress=points.append
            ).result()
        assert outcome.ok
        assert len(points) >= 2
        # The progressive contract: UB never increases, LB never
        # decreases across the stream.
        for earlier, later in zip(points, points[1:]):
            assert later.best_weight <= earlier.best_weight + 1e-12
            assert later.lower_bound >= earlier.lower_bound - 1e-12
        assert points[-1].best_weight == pytest.approx(outcome.result.weight)

    def test_run_batch_disambiguates_queries(self, index):
        seen = {}
        queries = [["q0", "q1"], ["q2", "q3"]]

        def on_progress(query_id, point):
            seen.setdefault(query_id, []).append(point)

        with QueryExecutor(index, max_workers=2) as executor:
            outcomes = executor.run_batch(
                queries, algorithm="basic", on_progress=on_progress
            )
        assert all(o.ok for o in outcomes)
        assert set(seen) == {0, 1}
        for query_id, points in seen.items():
            assert points[-1].best_weight == pytest.approx(
                outcomes[query_id].result.weight
            )

    def test_progress_rejected_under_process_isolation(self, index):
        executor = QueryExecutor(index, isolation="process")
        try:
            with pytest.raises(ValueError, match="process boundary"):
                executor.submit(["q0", "q1"], on_progress=lambda p: None)
        finally:
            executor.shutdown(wait=False)

    def test_dpbf_emits_single_terminal_point(self, index):
        points = []
        with QueryExecutor(index, max_workers=1) as executor:
            outcome = executor.submit(
                ["q0", "q1"], algorithm="dpbf", on_progress=points.append
            ).result()
        assert outcome.ok
        assert len(points) == 1
        assert points[0].best_weight == pytest.approx(outcome.result.weight)
        assert points[0].lower_bound == pytest.approx(outcome.result.weight)


class TestSinkOwnership:
    def test_path_sink_owned_and_closed_on_shutdown(self, index, tmp_path):
        path = str(tmp_path / "owned.jsonl")
        executor = QueryExecutor(index, max_workers=1, trace_sink=path)
        executor.run_batch([["q0", "q1"]])
        executor.shutdown()
        assert executor.trace_sink.closed
        with open(path, encoding="utf-8") as handle:
            assert len(handle.readlines()) == 1

    def test_borrowed_sink_flushed_not_closed(self, index, tmp_path):
        path = str(tmp_path / "borrowed.jsonl")
        with TraceSink(path) as sink:
            with QueryExecutor(index, max_workers=1, trace_sink=sink) as executor:
                executor.run_batch([["q0", "q1"]])
            # The executor's shutdown flushed but did not close: the
            # owner can keep appending through the same sink.
            assert not sink.closed
            with QueryExecutor(index, max_workers=1, trace_sink=sink) as executor:
                executor.run_batch([["q2", "q3"]])
            assert sink.count == 2

    def test_straggler_after_sink_close_drops_not_raises(
        self, index, tmp_path
    ):
        """A query finishing after the sink closed (a drain straggler)
        keeps its successful answer; the lost trace line is *counted*,
        in the sink and in the registry, instead of raised.

        Regression: the write-after-close ``ValueError`` used to
        propagate out of the worker and turn the answer into an error.
        """
        from repro.obs import instruments

        dropped_counter = instruments.traces_dropped()
        dropped_before = dropped_counter.value()
        path = str(tmp_path / "drain.jsonl")
        sink = TraceSink(path)
        with QueryExecutor(index, max_workers=1, trace_sink=sink) as executor:
            executor.run_batch([["q0", "q1"]])
            # The drain closes the sink while the executor still lives;
            # the next query to finish is the straggler.
            sink.close()
            outcome = executor.submit(["q1", "q2"]).result()
        assert outcome.ok
        assert outcome.trace.error is None
        assert sink.count == 1
        assert sink.dropped == 1
        assert dropped_counter.value() - dropped_before == 1
        with open(path, encoding="utf-8") as handle:
            assert len(handle.readlines()) == 1
