"""Units for the shared-memory worker fleet (`repro.service.fleet`).

What these pin down:

* warm-worker reuse — one attach per worker lifetime, many queries;
* concurrent-batch equivalence — a 4-worker fleet through
  :class:`~repro.service.QueryExecutor` answers byte-identically to
  the in-thread executor;
* respawn-and-resume — a SIGKILLed worker is replaced and the query
  resumes from its checkpoint instead of restarting cold;
* the shutdown/unlink contract — ``shutdown(wait=True)`` drains
  in-flight work before removing the segment, and a segment yanked
  out from under a live query surfaces a *typed* error
  (:class:`~repro.errors.WorkerCrashedError` carrying the attach
  failure), never a ``BufferError``.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.errors import ShmAttachError, WorkerCrashedError
from repro.graph import generators
from repro.graph.shm import SharedCSR
from repro.service import (
    FleetPool,
    GraphIndex,
    QueryExecutor,
    WorkerPolicy,
)


@pytest.fixture(scope="module")
def small_index():
    graph = generators.random_graph(
        300, 900, num_query_labels=6, label_frequency=10, seed=7
    )
    return GraphIndex(graph)


@pytest.fixture(scope="module")
def slow_index():
    """Big enough that a 6-label pruneddp++ solve runs for ~0.5s —
    room to checkpoint, kill, cancel, or shut down mid-search."""
    graph = generators.random_graph(
        2000, 6000, num_query_labels=6, label_frequency=30, seed=5
    )
    return GraphIndex(graph)


SLOW_QUERY = [f"q{i}" for i in range(6)]


def canonical(outcome) -> bytes:
    assert outcome.ok, outcome.error
    return json.dumps(
        {
            "weight": outcome.result.weight,
            "edges": sorted(outcome.result.tree.edges),
        },
        sort_keys=True,
    ).encode("utf-8")


class TestWarmReuse:
    def test_workers_attach_once_and_serve_many(self, small_index):
        with FleetPool(small_index, workers=2) as pool:
            first_pids = [w.pid for w in pool._slots]
            queries = [["q0", "q1"], ["q2", "q3"], ["q0", "q4"], ["q1", "q5"]]
            outcomes = [pool.execute(labels) for labels in queries]
            assert all(outcome.ok for outcome in outcomes)
            assert all(
                outcome.trace.fleet_worker is not None for outcome in outcomes
            )
            stats = pool.stats()
            # Same warm processes served everything: no respawns, no
            # re-attach, all queries accounted to the two slots.
            assert [w.pid for w in pool._slots] == first_pids
            assert sum(w["queries"] for w in stats["per_worker"]) == 4
            assert all(w["respawns"] == 0 for w in stats["per_worker"])
            assert all(
                w["attach_seconds"] > 0.0 for w in stats["per_worker"]
            )

    def test_shutdown_unlinks_the_segment(self, small_index):
        pool = FleetPool(small_index, workers=1)
        name = pool.shared.name
        assert pool.execute(["q0", "q1"]).ok
        pool.shutdown()
        with pytest.raises(ShmAttachError):
            SharedCSR.attach(name)
        # Idempotent: a second shutdown is a no-op, not an error.
        pool.shutdown()

    def test_closed_pool_returns_error_outcome(self, small_index):
        pool = FleetPool(small_index, workers=1)
        pool.shutdown()
        outcome = pool.execute(["q0", "q1"])
        assert not outcome.ok
        assert "shut down" in str(outcome.error)


class TestBatchEquivalence:
    def test_four_worker_batch_matches_in_thread(self, small_index):
        queries = [
            ["q0", "q1"], ["q2", "q3"], ["q0", "q4"], ["q1", "q5"],
            ["q2", "q5"], ["q3", "q4"], ["q0", "q2", "q4"], ["q1", "q3"],
        ]
        with QueryExecutor(small_index, isolation="thread") as executor:
            baseline = executor.run_batch(queries)
        with QueryExecutor(
            small_index, isolation="fleet", workers=4
        ) as executor:
            assert executor.isolation == "fleet"
            fleet = executor.run_batch(queries)
        for base, served in zip(baseline, fleet):
            assert canonical(served) == canonical(base)
            assert served.trace.fleet_worker in range(4)


class TestRespawnAndResume:
    def test_sigkilled_worker_resumes_from_checkpoint(
        self, slow_index, tmp_path
    ):
        # The chaos hook SIGKILLs the worker right after its second
        # checkpoint write (one-shot, marker-guarded), so the respawned
        # worker must resume the same query from disk.
        policy = WorkerPolicy(
            checkpoint_every_pops=500,
            checkpoint_every_seconds=0.05,
            chaos_kill_after_checkpoints=2,
            max_restarts=2,
        )
        reference = slow_index.execute(
            SLOW_QUERY, algorithm="pruneddp++", use_result_cache=False
        )
        with FleetPool(
            slow_index, workers=1,
            checkpoint_dir=str(tmp_path), policy=policy,
        ) as pool:
            outcome = pool.execute(
                SLOW_QUERY, algorithm="pruneddp++", use_result_cache=False
            )
            assert outcome.ok, outcome.error
            assert outcome.trace.worker_restarts >= 1
            assert outcome.trace.resumed_from is not None
            assert outcome.result.weight == reference.result.weight
            stats = pool.stats()
            assert stats["per_worker"][0]["respawns"] >= 1


class TestShutdownAndUnlinkSafety:
    def test_shutdown_wait_drains_inflight_query(self, slow_index, tmp_path):
        """``shutdown(wait=True)`` mid-query: the in-flight search is
        cancelled cooperatively, its (checkpointed) outcome is still
        delivered, and only then is the segment unlinked."""
        policy = WorkerPolicy(
            checkpoint_every_pops=500, checkpoint_every_seconds=0.05
        )
        pool = FleetPool(
            slow_index, workers=1,
            checkpoint_dir=str(tmp_path), policy=policy,
        )
        name = pool.shared.name
        outcomes = []

        def run():
            outcomes.append(
                pool.execute(
                    SLOW_QUERY, algorithm="basic", use_result_cache=False
                )
            )

        thread = threading.Thread(target=run)
        thread.start()
        # Let the query get properly underway before pulling the plug.
        deadline = time.monotonic() + 10
        while not any(w.busy for w in pool._slots):
            assert time.monotonic() < deadline, "query never started"
            time.sleep(0.01)
        time.sleep(0.2)
        pool.shutdown(wait=True)
        thread.join(timeout=30)
        assert not thread.is_alive()
        # The drained query delivered an outcome (cancelled or done),
        # and never a BufferError from the segment teardown.
        assert len(outcomes) == 1
        trace = outcomes[0].trace
        assert trace.status in ("ok", "cancelled"), trace.status
        with pytest.raises(ShmAttachError):
            SharedCSR.attach(name)

    def test_segment_yanked_mid_query_is_typed_not_buffererror(
        self, slow_index, tmp_path
    ):
        """Owner killed / segment unlinked while a query runs: the
        worker dies, the respawn cannot re-attach, and the caller gets
        a typed WorkerCrashedError naming the attach failure."""
        policy = WorkerPolicy(
            checkpoint_every_pops=500,
            checkpoint_every_seconds=0.05,
            max_restarts=2,
        )
        pool = FleetPool(
            slow_index, workers=1,
            checkpoint_dir=str(tmp_path), policy=policy,
        )
        try:
            worker_pid = pool._slots[0].pid
            outcomes = []

            def run():
                outcomes.append(
                    pool.execute(
                        SLOW_QUERY, algorithm="basic", use_result_cache=False
                    )
                )

            thread = threading.Thread(target=run)
            thread.start()
            deadline = time.monotonic() + 10
            while not any(w.busy for w in pool._slots):
                assert time.monotonic() < deadline, "query never started"
                time.sleep(0.01)
            time.sleep(0.2)
            # Yank the graph out from under the fleet, then kill the
            # worker so the pool is forced into a re-attach.
            pool.shared.unlink()
            os.kill(worker_pid, signal.SIGKILL)
            thread.join(timeout=60)
            assert not thread.is_alive()
            assert len(outcomes) == 1
            outcome = outcomes[0]
            assert not outcome.ok
            assert isinstance(outcome.error, WorkerCrashedError)
            assert "attach" in str(outcome.error).lower()
            assert "ShmAttachError" in str(outcome.error)
        finally:
            pool.shutdown(wait=False)
