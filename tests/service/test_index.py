"""GraphIndex: shared caches, component decomposition, execute()."""

from __future__ import annotations

import pytest

from repro import Graph
from repro.core import PrunedDPPlusPlusSolver, solve_gst
from repro.core.cache import LabelDistanceCache
from repro.errors import InfeasibleQueryError, LimitExceededError
from repro.graph import generators
from repro.service import Budget, GraphIndex
from repro.service.telemetry import STAGES


@pytest.fixture
def graph():
    return generators.random_graph(
        60, 130, num_query_labels=6, label_frequency=4, seed=33
    )


@pytest.fixture
def two_islands():
    """Two disconnected components with distinct and shared labels."""
    g = Graph()
    a = g.add_node(labels=["x", "shared"], name="a")
    b = g.add_node(labels=["y"], name="b")
    g.add_edge(a, b, 1.0)
    c = g.add_node(labels=["z", "shared"], name="c")
    d = g.add_node(labels=["w"], name="d")
    g.add_edge(c, d, 2.0)
    return g


class TestConstruction:
    def test_ensure_identity(self, graph):
        index = GraphIndex(graph)
        assert GraphIndex.ensure(index) is index
        assert isinstance(GraphIndex.ensure(graph), GraphIndex)

    def test_foreign_cache_rejected(self, graph):
        other = generators.random_graph(
            10, 15, num_query_labels=2, label_frequency=2, seed=1
        )
        with pytest.raises(ValueError):
            GraphIndex(graph, cache=LabelDistanceCache(other))

    def test_stats_mirror_graph(self, graph):
        index = GraphIndex(graph)
        assert index.num_nodes == graph.num_nodes
        assert index.num_edges == graph.num_edges
        assert index.num_labels == graph.num_labels
        assert index.label_frequency("q0") == graph.label_frequency("q0")

    def test_build_seconds_recorded(self, graph):
        index = GraphIndex(graph)
        assert index.build_seconds >= 0.0
        _ = index.component_ids  # lazy stage folds into build time
        assert index.build_seconds >= 0.0


class TestSolveParity:
    def test_same_answers_as_cold_solver(self, graph):
        index = GraphIndex(graph)
        for labels in (["q0", "q1"], ["q1", "q2", "q3"], ["q0", "q4"]):
            warm = index.solve(labels)
            cold = PrunedDPPlusPlusSolver(graph, labels).solve()
            assert warm.optimal and cold.optimal
            assert warm.weight == pytest.approx(cold.weight)

    def test_all_algorithms_agree(self, graph):
        index = GraphIndex(graph)
        weights = {
            algorithm: index.solve(["q0", "q1"], algorithm=algorithm).weight
            for algorithm in ("basic", "pruneddp", "pruneddp+", "pruneddp++", "dpbf")
        }
        reference = weights["pruneddp++"]
        for algorithm, weight in weights.items():
            assert weight == pytest.approx(reference), algorithm

    def test_auto_algorithm_resolves(self, graph):
        outcome = GraphIndex(graph).execute(["q0", "q1"], algorithm="auto")
        assert outcome.ok
        assert outcome.algorithm != "auto"

    def test_solve_gst_facade_delegates(self, graph):
        facade = solve_gst(graph, ["q0", "q1"])
        direct = GraphIndex(graph).solve(["q0", "q1"])
        assert facade.weight == pytest.approx(direct.weight)


class TestCacheSharing:
    def test_repeated_labels_hit_cache(self, graph):
        index = GraphIndex(graph)
        index.solve(["q0", "q1"])
        before = index.cache_info()
        index.solve(["q0", "q2"])
        after = index.cache_info()
        assert after["hits"] > before["hits"]

    def test_trace_counts_hits_and_misses(self, graph):
        index = GraphIndex(graph)
        first = index.execute(["q0", "q1"])
        assert first.trace.cache_hits == 0
        assert first.trace.cache_misses == 2
        second = index.execute(["q0", "q2"])
        assert second.trace.cache_hits == 1
        assert second.trace.cache_misses == 1

    def test_lru_bound_enforced(self, graph):
        index = GraphIndex(graph, max_cached_labels=2)
        index.solve(["q0", "q1"])
        index.solve(["q2", "q3"])
        index.solve(["q4", "q5"])
        info = index.cache_info()
        assert info["cached_labels"] <= 2
        assert info["evictions"] >= 4
        assert info["max_labels"] == 2


class TestComponents:
    def test_decomposition(self, two_islands):
        index = GraphIndex(two_islands)
        assert index.num_components == 2
        assert index.covering_components(["x", "y"]) != []
        assert index.covering_components(["x", "z"]) == []
        assert sorted(index.covering_components(["shared"])) == [0, 1]

    def test_is_feasible(self, two_islands):
        index = GraphIndex(two_islands)
        assert index.is_feasible(["x", "y"])
        assert index.is_feasible(["z", "w"])
        assert not index.is_feasible(["x", "w"])  # split across islands
        assert not index.is_feasible(["ghost"])
        assert not index.is_feasible([])

    def test_solve_within_component(self, two_islands):
        result = GraphIndex(two_islands).solve(["z", "w"])
        assert result.optimal
        assert result.weight == pytest.approx(2.0)

    def test_cross_component_query_infeasible(self, two_islands):
        outcome = GraphIndex(two_islands).execute(["x", "w"])
        assert not outcome.ok
        assert isinstance(outcome.error, InfeasibleQueryError)
        assert outcome.trace.status == "infeasible"


class TestExecute:
    def test_never_raises_on_bad_algorithm(self, graph):
        outcome = GraphIndex(graph).execute(["q0"], algorithm="nonsense")
        assert not outcome.ok
        assert isinstance(outcome.error, ValueError)
        assert outcome.trace.status == "error"
        with pytest.raises(ValueError):
            outcome.raise_for_error()

    def test_never_raises_on_missing_label(self, graph):
        outcome = GraphIndex(graph).execute(["q0", "no-such-label"])
        assert not outcome.ok
        assert outcome.trace.status == "infeasible"

    def test_expired_budget_skips(self, graph):
        import time

        budget = Budget().replace(deadline=time.perf_counter() - 1.0)
        outcome = GraphIndex(graph).execute(["q0", "q1"], budget=budget)
        assert not outcome.ok
        assert isinstance(outcome.error, LimitExceededError)
        assert outcome.trace.status == "skipped"
        assert outcome.trace.stages == {}

    def test_trace_stages_partition_wall(self, graph):
        outcome = GraphIndex(graph).execute(["q0", "q1", "q2"])
        trace = outcome.trace
        assert outcome.ok
        assert set(trace.stages) == set(STAGES)
        assert all(value >= 0.0 for value in trace.stages.values())
        assert trace.stage_total <= trace.wall_seconds + 1e-6
        assert trace.weight == pytest.approx(outcome.result.weight)
        assert trace.stats["feasible_seconds"] >= 0.0

    def test_query_id_passthrough(self, graph):
        outcome = GraphIndex(graph).execute(["q0", "q1"], query_id="abc")
        assert outcome.query_id == "abc"
        assert outcome.trace.query_id == "abc"

    def test_events_recorded(self, graph):
        outcome = GraphIndex(graph).execute(["q0", "q1"])
        names = [event["event"] for event in outcome.trace.events]
        assert "search_started" in names
        assert "search_finished" in names
