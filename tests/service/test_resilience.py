"""The resilience layer's contract under injected faults.

The batch isolation contract, strengthened: under injected hangs,
crashes and hostile load, ``run_batch`` never raises; cancelled queries
stop within a bounded number of state pops; degraded outcomes carry a
feasible tree whose recorded gap respects the rung's epsilon; breakers
trip after the configured threshold and close again after a successful
half-open probe — all of it visible in ``QueryTrace`` fields.
"""

from __future__ import annotations

import time

import pytest

import repro.core.solver as solver_mod
from repro.core import BasicSolver
from repro.core.budget import Budget, CancellationToken
from repro.errors import (
    CircuitOpenError,
    LimitExceededError,
    QueryCancelledError,
    QueryRejectedError,
)
from repro.graph import generators
from repro.service import (
    AdmissionController,
    AdmissionPolicy,
    BreakerPolicy,
    CircuitBreaker,
    GraphIndex,
    QueryExecutor,
    RetryPolicy,
)

# The engine checks limits (including the cancellation token) every
# this many pops; the bounded-stop contract is stated in its terms.
from repro.core.engine import _LIMIT_CHECK_INTERVAL


@pytest.fixture
def graph():
    return generators.random_graph(
        60, 130, num_query_labels=6, label_frequency=4, seed=33
    )


@pytest.fixture
def index(graph):
    return GraphIndex(graph)


@pytest.fixture
def big_graph():
    # Big enough that BasicSolver pops thousands of states on a 5-label
    # query — room for mid-run cancellation to matter.
    return generators.random_graph(
        200, 500, num_query_labels=6, label_frequency=5, seed=11
    )


HEAVY = ["q0", "q1", "q2", "q3", "q4"]


# ----------------------------------------------------------------------
# Cooperative cancellation
# ----------------------------------------------------------------------
class TestCancellation:
    def test_precancelled_token_pops_nothing(self, big_graph):
        token = CancellationToken()
        token.cancel("pre-cancelled")
        budget = Budget().with_cancellation(token)
        result = BasicSolver(big_graph, HEAVY, budget=budget).solve()
        assert result.stats.cancelled
        assert result.stats.states_popped == 0
        assert result.tree is None

    def test_midrun_cancel_stops_within_check_interval(self, big_graph):
        # Cancel at the first feasible answer: the engine must stop
        # within one limit-check interval of the cancellation point.
        clean = BasicSolver(big_graph, HEAVY).solve()
        assert clean.stats.states_popped > 2 * _LIMIT_CHECK_INTERVAL

        token = CancellationToken()

        def cancel_on_first_best(point):
            token.cancel("first feasible answer is good enough")

        result = BasicSolver(
            big_graph,
            HEAVY,
            budget=Budget().with_cancellation(token),
            on_progress=cancel_on_first_best,
        ).solve()
        assert result.stats.cancelled
        # The first progress event fires within the first check interval,
        # and at most one more interval elapses before the engine stops.
        assert result.stats.states_popped <= 2 * _LIMIT_CHECK_INTERVAL
        # The progressive contract: the incumbent is feasible and its
        # recorded gap is sound.
        assert result.tree is not None
        result.tree.validate(big_graph, HEAVY)
        assert result.weight >= clean.weight

    def test_cancelled_outcome_through_service(self, index):
        token = CancellationToken()
        token.cancel("user clicked stop")
        with QueryExecutor(index, max_workers=2) as executor:
            outcomes = executor.run_batch([["q0", "q1"]] * 4, cancel_token=token)
        assert [o.trace.status for o in outcomes] == ["cancelled"] * 4
        assert all(isinstance(o.error, QueryCancelledError) for o in outcomes)
        assert all(o.trace.cancelled for o in outcomes)
        assert all("user clicked stop" in str(o.error) for o in outcomes)

    def test_cancel_mid_batch_never_raises(self, big_graph):
        index = GraphIndex(big_graph)
        token = CancellationToken()
        queries = [HEAVY] * 12
        with QueryExecutor(index, max_workers=2, algorithm="basic") as executor:
            futures = [
                executor.submit(q, query_id=i, cancel_token=token)
                for i, q in enumerate(queries)
            ]
            token.cancel("mid-batch")
            outcomes = [f.result() for f in futures]
        assert len(outcomes) == len(queries)
        # Every outcome is a real outcome; none leaked an exception.
        assert {o.trace.status for o in outcomes} <= {"ok", "cancelled"}
        assert "cancelled" in [o.trace.status for o in outcomes]


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_estimate_grows_with_k_and_frequency(self, index):
        controller = AdmissionController(index)
        two = controller.estimate_states(["q0", "q1"])
        three = controller.estimate_states(["q0", "q1", "q2"])
        assert 0 < two < three

    def test_max_k_rejects(self, index):
        controller = AdmissionController(index, AdmissionPolicy(max_k=2))
        with pytest.raises(QueryRejectedError) as info:
            controller.admit(["q0", "q1", "q2"], None)
        assert info.value.estimated_states > 0
        assert controller.admit(["q0", "q1"], None) is None  # admitted

    def test_state_ceiling_rejects_with_typed_error(self, index):
        controller = AdmissionController(
            index, AdmissionPolicy(max_estimated_states=1)
        )
        with pytest.raises(QueryRejectedError) as info:
            controller.admit(["q0", "q1"], Budget())
        assert info.value.estimated_states > 1

    def test_deadline_aware_rejection(self, index):
        # One estimated-second per state and a microscopic deadline:
        # nothing real fits.
        controller = AdmissionController(
            index, AdmissionPolicy(states_per_second=1.0)
        )
        budget = Budget().with_deadline(0.001)
        decision = controller.assess(["q0", "q1", "q2"], budget)
        assert decision.action == "reject"
        assert "deadline" in decision.reason

    def test_clamp_action_downbudgets_instead(self, index):
        controller = AdmissionController(
            index, AdmissionPolicy(max_estimated_states=5, action="clamp")
        )
        decision = controller.assess(["q0", "q1"], Budget())
        assert decision.action == "clamp"
        assert decision.budget.max_states == 5
        assert decision.budget.on_limit == "return"

    def test_rejected_query_is_isolated_in_batch(self, index):
        with QueryExecutor(
            index, admission=AdmissionPolicy(max_k=2), max_workers=2
        ) as executor:
            outcomes = executor.run_batch([["q0", "q1", "q2"], ["q3", "q4"]])
        rejected, sibling = outcomes
        assert rejected.trace.status == "rejected"
        assert isinstance(rejected.error, QueryRejectedError)
        assert rejected.trace.admission["action"] == "reject"
        assert rejected.trace.attempts == 0  # no solver ever ran
        assert sibling.ok and sibling.result.optimal
        assert sibling.trace.admission["action"] == "admit"

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_k=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(states_per_second=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(action="panic")


# ----------------------------------------------------------------------
# Retry with degradation
# ----------------------------------------------------------------------
class BoomError(RuntimeError):
    pass


@pytest.fixture
def broken_top_rung(monkeypatch):
    """Make the 'pruneddp++' rung raise mid-search; count the attempts."""
    calls = {"n": 0}
    real = solver_mod.ALGORITHMS["pruneddp++"]

    class Exploding(real):
        def run_search(self, context, prepared=None):
            calls["n"] += 1
            raise BoomError("injected mid-search crash")

    monkeypatch.setitem(solver_mod.ALGORITHMS, "pruneddp++", Exploding)
    return calls


class TestRetryLadder:
    def test_degrades_one_rung_and_records_it(self, index, broken_top_rung):
        with QueryExecutor(
            index, retry_policy=RetryPolicy(max_retries=2)
        ) as executor:
            outcome = executor.run_batch([["q0", "q1"]])[0]
        assert outcome.ok
        assert outcome.algorithm == "pruneddp"          # one rung down
        assert outcome.trace.requested_algorithm == "pruneddp++"
        assert outcome.trace.degraded
        assert outcome.trace.attempts == 2
        assert [r["algorithm"] for r in outcome.trace.retries] == ["pruneddp++"]
        assert "injected" in outcome.trace.retries[0]["error"]
        assert broken_top_rung["n"] == 1

    def test_degraded_gap_respects_rung_epsilon(self, index, broken_top_rung):
        policy = RetryPolicy(max_retries=2, epsilon_ladder=(0.25,))
        with QueryExecutor(index, retry_policy=policy) as executor:
            outcome = executor.run_batch([["q0", "q1", "q2"]])[0]
        assert outcome.ok and outcome.trace.degraded
        assert outcome.result.tree is not None
        # The degraded answer's recorded guarantee honors the rung's
        # epsilon: the gap never exceeds what the rung asked for.
        assert outcome.result.ratio <= 1.25 + 1e-9

    def test_limit_exceeded_is_retried(self, index, monkeypatch):
        real = solver_mod.ALGORITHMS["pruneddp++"]

        class LimitBomb(real):
            def run_search(self, context, prepared=None):
                raise LimitExceededError("injected pop-limit hit")

        monkeypatch.setitem(solver_mod.ALGORITHMS, "pruneddp++", LimitBomb)
        with QueryExecutor(
            index, retry_policy=RetryPolicy(max_retries=1)
        ) as executor:
            outcome = executor.run_batch([["q0", "q1"]])[0]
        assert outcome.ok
        assert outcome.trace.attempts == 2

    def test_infeasible_is_not_retried(self, index):
        with QueryExecutor(
            index, retry_policy=RetryPolicy(max_retries=3)
        ) as executor:
            outcome = executor.run_batch([["q0", "no-such-label"]])[0]
        assert outcome.trace.status == "infeasible"
        assert outcome.trace.attempts == 1
        assert outcome.trace.retries == []

    def test_exhausted_retries_fail_cleanly(self, index, monkeypatch):
        for name in ("pruneddp++", "pruneddp", "basic"):
            real = solver_mod.ALGORITHMS[name]

            class AlwaysBoom(real):  # noqa: B023 - bound per iteration below
                def run_search(self, context, prepared=None):
                    raise BoomError("everything is broken")

            monkeypatch.setitem(solver_mod.ALGORITHMS, name, AlwaysBoom)
        with QueryExecutor(
            index, retry_policy=RetryPolicy(max_retries=2)
        ) as executor:
            outcome = executor.run_batch([["q0", "q1"]])[0]
        assert not outcome.ok
        assert outcome.trace.status == "error"
        assert outcome.trace.attempts == 3
        assert len(outcome.trace.retries) == 2

    def test_plain_retry_without_degradation(self, index, broken_top_rung):
        policy = RetryPolicy(max_retries=2, degrade=False)
        with QueryExecutor(index, retry_policy=policy) as executor:
            outcome = executor.run_batch([["q0", "q1"]])[0]
        # Same (broken) algorithm every time: the query fails, but the
        # trace shows three faithful attempts at the requested rung.
        assert not outcome.ok
        assert outcome.trace.attempts == 3
        assert broken_top_rung["n"] == 3
        assert not outcome.trace.degraded

    def test_rung_epsilon_only_grows(self):
        policy = RetryPolicy(epsilon_ladder=(0.1, 0.25))
        base = Budget(epsilon=0.5)
        _, first = policy.rung("pruneddp++", 1, base)
        assert first.epsilon == 0.5  # never shrinks below the caller's


# ----------------------------------------------------------------------
# Circuit breaking
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=3, cooldown_seconds=10.0),
            clock=clock,
        )
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2))
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two in a row

    def test_half_open_probe_lifecycle(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, cooldown_seconds=5.0),
            clock=clock,
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 5.0  # cooldown elapsed
        assert breaker.state == "half_open"
        assert breaker.allow()       # the single probe slot
        assert not breaker.allow()   # concurrent second probe refused
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, cooldown_seconds=5.0),
            clock=clock,
        )
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.now = 9.0  # cooldown restarted at t=5
        assert breaker.state == "open"
        clock.now = 10.0
        assert breaker.state == "half_open"


class TestBreakerIntegration:
    def test_open_breaker_sheds_to_ladder_without_calling_solver(
        self, index, broken_top_rung
    ):
        executor = QueryExecutor(
            index,
            max_workers=1,
            retry_policy=RetryPolicy(max_retries=1),
            breaker_policy=BreakerPolicy(
                failure_threshold=2, cooldown_seconds=60.0
            ),
        )
        with executor:
            # Two queries, each failing once on the top rung: trips it.
            executor.run_batch([["q0", "q1"]])
            executor.run_batch([["q2", "q3"]])
            assert executor.breaker_snapshot()["pruneddp++"]["state"] == "open"
            calls_before = broken_top_rung["n"]
            outcome = executor.run_batch([["q4", "q5"]])[0]
        assert outcome.ok
        assert outcome.algorithm == "pruneddp"
        assert outcome.trace.breaker_skips == ["pruneddp++"]
        assert outcome.trace.degraded
        # Load was shed: the broken configuration never ran again.
        assert broken_top_rung["n"] == calls_before

    def test_breaker_recovers_through_half_open(self, index, monkeypatch):
        real = solver_mod.ALGORITHMS["pruneddp++"]
        behavior = {"fail": True, "calls": 0}

        class Flaky(real):
            def run_search(self, context, prepared=None):
                behavior["calls"] += 1
                if behavior["fail"]:
                    raise BoomError("transient outage")
                return super().run_search(context, prepared)

        monkeypatch.setitem(solver_mod.ALGORITHMS, "pruneddp++", Flaky)
        executor = QueryExecutor(
            index,
            max_workers=1,
            retry_policy=RetryPolicy(max_retries=1),
            breaker_policy=BreakerPolicy(
                failure_threshold=1, cooldown_seconds=0.05
            ),
        )
        with executor:
            executor.run_batch([["q0", "q1"]])  # trips the breaker
            assert executor.breaker_snapshot()["pruneddp++"]["state"] == "open"
            behavior["fail"] = False  # the outage ends
            time.sleep(0.06)          # cooldown elapses -> half-open
            outcome = executor.run_batch([["q2", "q3"]])[0]
            assert outcome.ok
            assert outcome.algorithm == "pruneddp++"  # probe ran the real rung
            assert not outcome.trace.degraded
            assert executor.breaker_snapshot()["pruneddp++"]["state"] == "closed"

    def test_all_rungs_open_fails_fast_with_typed_error(
        self, index, monkeypatch
    ):
        for name in ("pruneddp++", "pruneddp", "basic"):
            real = solver_mod.ALGORITHMS[name]

            class AlwaysBoom(real):
                def run_search(self, context, prepared=None):
                    raise BoomError("systemic outage")

            monkeypatch.setitem(solver_mod.ALGORITHMS, name, AlwaysBoom)
        executor = QueryExecutor(
            index,
            max_workers=1,
            retry_policy=RetryPolicy(max_retries=2),
            breaker_policy=BreakerPolicy(
                failure_threshold=1, cooldown_seconds=60.0
            ),
        )
        with executor:
            first = executor.run_batch([["q0", "q1"]])[0]  # trips all three
            assert not first.ok
            snapshot = executor.breaker_snapshot()
            assert {snapshot[n]["state"] for n in snapshot} == {"open"}
            outcome = executor.run_batch([["q2", "q3"]])[0]
        assert isinstance(outcome.error, CircuitOpenError)
        assert outcome.trace.status == "error"
        assert outcome.trace.attempts == 0
        assert set(outcome.trace.breaker_skips) == {
            "pruneddp++", "pruneddp", "basic"
        }

    def test_breaker_not_blamed_for_infeasible_queries(self, index):
        executor = QueryExecutor(
            index,
            breaker_policy=BreakerPolicy(failure_threshold=1),
        )
        with executor:
            executor.run_batch([["ghost"]] * 3)
            outcome = executor.run_batch([["q0", "q1"]])[0]
        assert outcome.ok  # infeasible queries never tripped anything
        snapshot = executor.breaker_snapshot()
        assert snapshot["pruneddp++"]["state"] == "closed"


# ----------------------------------------------------------------------
# Traces stay JSON-safe with every resilience field populated
# ----------------------------------------------------------------------
class TestTraceSerialization:
    def test_resilience_fields_survive_json(self, index, broken_top_rung):
        import json

        with QueryExecutor(
            index,
            admission=AdmissionPolicy(max_estimated_states=10**12),
            retry_policy=RetryPolicy(max_retries=2),
            breaker_policy=BreakerPolicy(failure_threshold=5),
        ) as executor:
            outcome = executor.run_batch([["q0", "q1"]])[0]
        record = json.loads(outcome.trace.to_json())
        assert record["requested_algorithm"] == "pruneddp++"
        assert record["attempts"] == 2
        assert record["degraded"] is True
        assert record["admission"]["action"] == "admit"
        assert record["retries"][0]["algorithm"] == "pruneddp++"
