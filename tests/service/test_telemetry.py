"""QueryTrace / TraceSink serialization and engine event hooks."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.core import PrunedDPPlusPlusSolver
from repro.graph import generators
from repro.service import GraphIndex, QueryTrace, TraceSink
from repro.service.telemetry import STAGES


@pytest.fixture
def graph():
    return generators.random_graph(
        50, 110, num_query_labels=5, label_frequency=3, seed=11
    )


def _trace(**overrides) -> QueryTrace:
    base = dict(query_id=1, labels=("a", "b"), algorithm="pruneddp++")
    base.update(overrides)
    return QueryTrace(**base)


class TestQueryTrace:
    def test_stage_total(self):
        trace = _trace(stages={"context_build": 0.1, "search": 0.3})
        assert trace.stage_total == pytest.approx(0.4)

    def test_ok_property_tracks_status(self):
        assert _trace().ok
        assert not _trace(status="infeasible").ok

    def test_to_dict_roundtrips_through_json(self):
        trace = _trace(
            weight=4.5,
            optimal=True,
            ratio=1.0,
            stages={stage: 0.0 for stage in STAGES},
        )
        record = json.loads(trace.to_json())
        assert record["weight"] == 4.5
        assert record["labels"] == ["a", "b"]
        assert set(record["stages"]) == set(STAGES)

    def test_infinite_values_serialize_as_strings(self):
        trace = _trace(
            weight=float("inf"),
            ratio=float("inf"),
            events=[{"event": "new_best", "weight": float("inf")}],
        )
        record = json.loads(trace.to_json())  # strict JSON, no Infinity
        assert record["weight"] == "inf"
        assert record["ratio"] == "inf"
        assert record["events"][0]["weight"] == "inf"


class TestTraceSink:
    def test_path_destination_owns_file(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        with TraceSink(path) as sink:
            sink.write(_trace())
            assert sink.count == 1
        with open(path, encoding="utf-8") as handle:
            assert json.loads(handle.readline())["query_id"] == 1

    def test_file_object_destination_left_open(self):
        buffer = io.StringIO()
        sink = TraceSink(buffer)
        sink.write(_trace())
        sink.close()
        assert not buffer.closed  # caller's handle is not the sink's to close
        assert buffer.getvalue().count("\n") == 1

    def test_concurrent_writes_produce_whole_lines(self):
        buffer = io.StringIO()
        sink = TraceSink(buffer)
        per_thread = 25

        def spam(thread_id: int) -> None:
            for i in range(per_thread):
                sink.write(_trace(query_id=f"{thread_id}-{i}"))

        threads = [threading.Thread(target=spam, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 8 * per_thread == sink.count
        ids = {json.loads(line)["query_id"] for line in lines}
        assert len(ids) == 8 * per_thread  # no torn or interleaved writes


class TestEngineEvents:
    def test_solver_emits_lifecycle_events(self, graph):
        events = []
        PrunedDPPlusPlusSolver(
            graph,
            ["q0", "q1"],
            on_event=lambda name, payload: events.append((name, payload)),
        ).solve()
        names = [name for name, _ in events]
        assert names[0] == "search_started"
        assert names[-1] == "search_finished"
        assert "new_best" in names
        finished = dict(events[-1][1])
        assert finished["optimal"] is True
        assert finished["best_weight"] >= 0.0

    def test_feasible_seconds_accounted(self, graph):
        result = PrunedDPPlusPlusSolver(graph, ["q0", "q1", "q2"]).solve()
        stats = result.stats.to_dict()
        assert stats["feasible_seconds"] >= 0.0
        assert stats["feasible_seconds"] <= stats["total_seconds"]

    def test_execute_trace_consistent_with_result(self, graph):
        outcome = GraphIndex(graph).execute(["q0", "q1"])
        trace = outcome.trace
        assert trace.ok
        assert trace.algorithm == "pruneddp++"
        assert trace.optimal == outcome.result.optimal
        assert trace.stats["states_popped"] == outcome.result.stats.states_popped
        assert trace.wall_seconds > 0.0
        # The recorded stages account for (almost) all of the wall time.
        assert trace.stage_total <= trace.wall_seconds
        assert trace.stage_total >= 0.5 * trace.wall_seconds

class TestTraceSinkLifecycle:
    def test_close_is_idempotent(self, tmp_path):
        sink = TraceSink(str(tmp_path / "out.jsonl"))
        sink.write(_trace())
        sink.close()
        sink.close()  # second owner closing defensively: no error
        assert sink.closed

    def test_close_flushes_borrowed_file(self):
        buffer = io.StringIO()
        sink = TraceSink(buffer)
        sink.write(_trace())
        sink.close()
        sink.close()
        assert sink.closed
        assert not buffer.closed
        assert buffer.getvalue().count("\n") == 1

    def test_write_after_close_raises(self, tmp_path):
        sink = TraceSink(str(tmp_path / "out.jsonl"))
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.write(_trace())

    def test_flush_safe_after_close(self, tmp_path):
        sink = TraceSink(str(tmp_path / "out.jsonl"))
        sink.write(_trace())
        sink.close()
        sink.flush()  # no-op, never an error on a closed sink
