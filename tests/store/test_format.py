"""On-disk container format: framing, corruption, version skew.

The acceptance contract under test: every way a store file can be bad
(truncated header, truncated frame, truncated payload, flipped bytes,
wrong magic, future version, trailing garbage inside a payload) raises
a typed :class:`~repro.errors.StoreError` subclass — never a bare
``EOFError``/``struct.error``/``KeyError``.
"""

from __future__ import annotations

import io
import struct

import pytest

from repro.errors import StoreCorruptError, StoreError, StoreVersionError
from repro.store.format import (
    FORMAT_VERSION,
    MAGIC,
    iter_records,
    pack_json,
    pack_label_table,
    read_header,
    unpack_json,
    unpack_label_table,
    write_header,
    write_record,
)

INF = float("inf")


def framed(*payloads: bytes, version: int = FORMAT_VERSION) -> io.BytesIO:
    buf = io.BytesIO()
    write_header(buf, version)
    for payload in payloads:
        write_record(buf, payload)
    buf.seek(0)
    return buf


class TestHeader:
    def test_round_trip(self):
        buf = framed()
        assert read_header(buf) == FORMAT_VERSION

    def test_truncated_header(self):
        buf = io.BytesIO(MAGIC[:4])
        with pytest.raises(StoreCorruptError, match="truncated header"):
            read_header(buf)

    def test_empty_file(self):
        with pytest.raises(StoreCorruptError):
            read_header(io.BytesIO(b""))

    def test_bad_magic(self):
        buf = io.BytesIO(b"NOTASTOR" + struct.pack("<I", FORMAT_VERSION))
        with pytest.raises(StoreCorruptError, match="bad magic"):
            read_header(buf)

    def test_version_skew(self):
        buf = io.BytesIO(MAGIC + struct.pack("<I", FORMAT_VERSION + 1))
        with pytest.raises(StoreVersionError, match="version"):
            read_header(buf)

    def test_version_error_is_store_error(self):
        buf = io.BytesIO(MAGIC + struct.pack("<I", 99))
        with pytest.raises(StoreError):
            read_header(buf)


class TestRecords:
    def test_round_trip_multiple(self):
        payloads = [b"alpha", b"", b"\x00" * 1000]
        buf = framed(*payloads)
        read_header(buf)
        assert list(iter_records(buf)) == payloads

    def test_truncated_frame(self):
        buf = framed(b"hello")
        data = buf.getvalue()[:-7]  # cut into the payload's frame
        truncated = io.BytesIO(data[: len(MAGIC) + 4 + 3])
        read_header(truncated)
        with pytest.raises(StoreCorruptError, match="truncated record frame"):
            list(iter_records(truncated))

    def test_truncated_payload(self):
        buf = framed(b"hello world")
        truncated = io.BytesIO(buf.getvalue()[:-4])
        read_header(truncated)
        with pytest.raises(StoreCorruptError, match="truncated record payload"):
            list(iter_records(truncated))

    def test_flipped_byte_fails_crc(self):
        buf = framed(b"sensitive payload bytes")
        data = bytearray(buf.getvalue())
        data[-3] ^= 0xFF  # corrupt the payload, keep the frame intact
        corrupt = io.BytesIO(bytes(data))
        read_header(corrupt)
        with pytest.raises(StoreCorruptError, match="checksum mismatch"):
            list(iter_records(corrupt))

    def test_eof_is_clean_stop(self):
        buf = framed(b"only")
        read_header(buf)
        assert list(iter_records(buf)) == [b"only"]
        assert list(iter_records(buf)) == []  # already at EOF


class TestLabelTablePayload:
    def test_round_trip(self):
        dist = [0.0, 1.5, INF, 2.25]
        parent = [-1, 0, -1, 1]
        label, got_dist, got_parent = unpack_label_table(
            pack_label_table("q0", dist, parent)
        )
        assert label == "q0"
        assert got_dist == dist  # inf survives float64 framing
        assert got_parent == parent

    def test_unicode_label(self):
        payload = pack_label_table("ε-läbel", [0.0], [-1])
        assert unpack_label_table(payload)[0] == "ε-läbel"

    def test_length_mismatch_rejected_at_pack(self):
        with pytest.raises(ValueError):
            pack_label_table("q0", [0.0, 1.0], [-1])

    def test_short_payload(self):
        payload = pack_label_table("q0", [0.0, 1.0], [-1, 0])
        with pytest.raises(StoreCorruptError, match="malformed label table"):
            unpack_label_table(payload[:-2])

    def test_trailing_bytes(self):
        payload = pack_label_table("q0", [0.0], [-1])
        with pytest.raises(StoreCorruptError, match="trailing bytes"):
            unpack_label_table(payload + b"xx")

    def test_garbage(self):
        with pytest.raises(StoreCorruptError):
            unpack_label_table(b"\x01")


class TestJsonPayload:
    def test_round_trip(self):
        record = {"labels": ["a", "b"], "epsilon": 0.1, "nested": [1, 2]}
        assert unpack_json(pack_json(record)) == record

    def test_malformed_json(self):
        with pytest.raises(StoreCorruptError, match="malformed JSON"):
            unpack_json(b"{not json")

    def test_invalid_utf8(self):
        with pytest.raises(StoreCorruptError):
            unpack_json(b"\xff\xfe{}")
