"""Manifest and graph-fingerprint tests: the store's trust anchor."""

from __future__ import annotations

import json

import pytest

from repro import Graph
from repro.errors import StoreCorruptError, StoreVersionError
from repro.graph import generators
from repro.store.format import FORMAT_VERSION
from repro.store.manifest import MANIFEST_NAME, Manifest, graph_fingerprint


def make_graph(seed: int = 0):
    return generators.random_graph(
        20, 35, num_query_labels=4, label_frequency=3, seed=seed
    )


class TestGraphFingerprint:
    def test_deterministic(self):
        assert graph_fingerprint(make_graph(1)) == graph_fingerprint(make_graph(1))

    def test_different_seed_differs(self):
        assert graph_fingerprint(make_graph(1)) != graph_fingerprint(make_graph(2))

    def test_sensitive_to_weight_change(self):
        g1, g2 = make_graph(), make_graph()
        u, v, w = next(iter(g2.edges()))
        g2.add_edge(u, v, w / 2.0)  # parallel edges keep the lighter weight
        assert graph_fingerprint(g1) != graph_fingerprint(g2)

    def test_sensitive_to_label_move(self):
        g1, g2 = make_graph(), make_graph()
        g2.add_labels(0, ["brand-new-label"])
        assert graph_fingerprint(g1) != graph_fingerprint(g2)

    def test_sensitive_to_extra_node(self):
        g1, g2 = make_graph(), make_graph()
        g2.add_node()
        assert graph_fingerprint(g1) != graph_fingerprint(g2)

    def test_insertion_order_invariant(self):
        """Same structure built in a different edge order → same hash."""
        def build(edge_order):
            g = Graph()
            for _ in range(3):
                g.add_node()
            g.add_labels(0, ["x"])
            g.add_labels(2, ["y"])
            for u, v, w in edge_order:
                g.add_edge(u, v, w)
            return g

        edges = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)]
        assert graph_fingerprint(build(edges)) == graph_fingerprint(
            build(list(reversed(edges)))
        )


class TestManifest:
    def test_round_trip(self, tmp_path):
        graph = make_graph()
        manifest = Manifest.for_graph(
            graph, ["q0", "q1"], graph_stem="/data/g"
        )
        manifest.save(str(tmp_path))
        loaded = Manifest.load(str(tmp_path))
        assert loaded == manifest

    def test_missing_file(self, tmp_path):
        with pytest.raises(StoreCorruptError, match="cannot read"):
            Manifest.load(str(tmp_path))

    def test_malformed_json(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{broken", encoding="utf-8")
        with pytest.raises(StoreCorruptError, match="malformed manifest"):
            Manifest.load(str(tmp_path))

    def test_not_an_object(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(StoreCorruptError, match="not a JSON object"):
            Manifest.load(str(tmp_path))

    @pytest.mark.parametrize("key", Manifest.REQUIRED)
    def test_missing_required_key(self, tmp_path, key):
        manifest = Manifest.for_graph(make_graph(), ["q0"])
        record = manifest.to_dict()
        del record[key]
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(record))
        if key == "format_version":
            # Treated as a missing key (corruption), not version skew.
            with pytest.raises(StoreCorruptError, match="missing required"):
                Manifest.load(str(tmp_path))
        else:
            with pytest.raises(StoreCorruptError, match=key):
                Manifest.load(str(tmp_path))

    def test_version_skew(self, tmp_path):
        manifest = Manifest.for_graph(make_graph(), ["q0"])
        record = manifest.to_dict()
        record["format_version"] = FORMAT_VERSION + 7
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(record))
        with pytest.raises(StoreVersionError):
            Manifest.load(str(tmp_path))

    def test_wrong_field_type(self, tmp_path):
        manifest = Manifest.for_graph(make_graph(), ["q0"])
        record = manifest.to_dict()
        record["num_nodes"] = "many"
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(record))
        with pytest.raises(StoreCorruptError, match="wrong type"):
            Manifest.load(str(tmp_path))

    def test_label_frequencies_recorded(self):
        graph = make_graph()
        manifest = Manifest.for_graph(graph, ["q0", "q3"])
        assert manifest.label_frequencies == {
            "q0": graph.label_frequency("q0"),
            "q3": graph.label_frequency("q3"),
        }

    def test_manifest_is_human_readable(self, tmp_path):
        Manifest.for_graph(make_graph(), ["q0"]).save(str(tmp_path))
        text = (tmp_path / MANIFEST_NAME).read_text(encoding="utf-8")
        assert "\n" in text  # indented, not minified
        assert json.loads(text)["created_by"] == "repro.store"
