"""Epsilon-aware result-cache semantics (the reuse rule), LRU/TTL,
and CRC-framed persistence round-trips.

The asymmetric reuse rule under test: an answer *proven* within
``(1 + ε)`` of optimal may serve any later request asking for
``ε' ≥ ε``; it must never serve a tighter request.
"""

from __future__ import annotations

import io

import pytest

from repro import solve_gst
from repro.errors import StoreCorruptError
from repro.graph import generators
from repro.store.result_cache import CachedAnswer, ResultCache, result_key


@pytest.fixture(scope="module")
def graph():
    return generators.random_graph(
        40, 80, num_query_labels=6, label_frequency=3, seed=7
    )


@pytest.fixture(scope="module")
def exact_result(graph):
    return solve_gst(graph, ["q0", "q1"])


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def loose_answer(result, labels, algorithm="pruneddp++", epsilon=0.5):
    """A CachedAnswer claiming only a (1+epsilon) proof for ``result``."""
    return CachedAnswer(
        labels=tuple(sorted(str(l) for l in labels)),
        algorithm=algorithm,
        weight=result.weight,
        lower_bound=result.weight / (1.0 + epsilon),
        optimal=False,
        epsilon=epsilon,
        tree_nodes=tuple(result.tree.nodes),
        tree_edges=tuple(result.tree.edges),
        created=1000.0,
    )


def install(cache, answer):
    """Insert a hand-built CachedAnswer (bypassing put's proof logic)."""
    cache._entries[result_key(answer.labels, answer.algorithm)] = answer


class TestEpsilonReuseRule:
    def test_exact_serves_everything(self, graph, exact_result):
        cache = ResultCache()
        cache.put(["q0", "q1"], "pruneddp++", exact_result)
        for requested in (0.0, 0.1, 0.5, 10.0):
            hit = cache.lookup(["q0", "q1"], "pruneddp++", requested)
            assert hit is not None, requested
            assert hit.epsilon == 0.0

    def test_loose_does_not_serve_tighter(self, graph, exact_result):
        cache = ResultCache()
        install(cache, loose_answer(exact_result, ["q0", "q1"], epsilon=0.5))
        assert cache.lookup(["q0", "q1"], "pruneddp++", 0.1) is None
        assert cache.lookup(["q0", "q1"], "pruneddp++", 0.0) is None
        # ... but the entry stays for looser callers:
        assert cache.lookup(["q0", "q1"], "pruneddp++", 0.5) is not None
        assert cache.lookup(["q0", "q1"], "pruneddp++", 0.9) is not None

    def test_equal_epsilon_serves(self, graph, exact_result):
        cache = ResultCache()
        install(cache, loose_answer(exact_result, ["q0", "q1"], epsilon=0.3))
        assert cache.lookup(["q0", "q1"], "pruneddp++", 0.3) is not None

    def test_tier_mismatch_bypasses(self, graph, exact_result):
        cache = ResultCache()
        cache.put(["q0", "q1"], "pruneddp++", exact_result)
        assert cache.lookup(["q0", "q1"], "basic", 1.0) is None
        assert cache.lookup(["q0", "q1"], "pruneddp", 1.0) is None

    def test_label_order_is_canonical(self, graph, exact_result):
        cache = ResultCache()
        cache.put(["q1", "q0"], "pruneddp++", exact_result)
        assert cache.lookup(["q0", "q1"], "pruneddp++", 0.0) is not None

    def test_tighter_answer_replaces_looser(self, graph, exact_result):
        cache = ResultCache()
        install(cache, loose_answer(exact_result, ["q0", "q1"], epsilon=0.5))
        cache.put(["q0", "q1"], "pruneddp++", exact_result)
        hit = cache.lookup(["q0", "q1"], "pruneddp++", 0.0)
        assert hit is not None and hit.epsilon == 0.0

    def test_looser_answer_never_degrades_exact(self, graph, exact_result):
        cache = ResultCache()
        cache.put(["q0", "q1"], "pruneddp++", exact_result)
        # A later anytime run proving only 1.5x must not clobber it.
        import dataclasses

        loose = dataclasses.replace(
            exact_result, optimal=False,
            lower_bound=exact_result.weight / 1.5,
        )
        cache.put(["q0", "q1"], "pruneddp++", loose)
        hit = cache.lookup(["q0", "q1"], "pruneddp++", 0.0)
        assert hit is not None and hit.optimal

    def test_infeasible_not_cached(self, graph):
        cache = ResultCache()
        import dataclasses

        result = solve_gst(graph, ["q0"])
        broken = dataclasses.replace(result, tree=None, weight=float("inf"))
        assert cache.put(["q0"], "pruneddp++", broken) is None
        assert len(cache) == 0


class TestEvictionAndTTL:
    def test_lru_eviction(self, graph, exact_result):
        cache = ResultCache(max_entries=2)
        cache.put(["q0", "q1"], "pruneddp++", exact_result)
        cache.put(["q0", "q2"], "pruneddp++", solve_gst(graph, ["q0", "q2"]))
        cache.lookup(["q0", "q1"], "pruneddp++", 0.0)  # refresh recency
        cache.put(["q0", "q3"], "pruneddp++", solve_gst(graph, ["q0", "q3"]))
        assert cache.counters()["evictions"] == 1
        assert cache.lookup(["q0", "q1"], "pruneddp++", 0.0) is not None
        assert cache.lookup(["q0", "q2"], "pruneddp++", 0.0) is None

    def test_ttl_expiry(self, graph, exact_result):
        clock = FakeClock()
        cache = ResultCache(ttl_seconds=60.0, clock=clock)
        cache.put(["q0", "q1"], "pruneddp++", exact_result)
        clock.now += 59.0
        assert cache.lookup(["q0", "q1"], "pruneddp++", 0.0) is not None
        clock.now += 2.0
        assert cache.lookup(["q0", "q1"], "pruneddp++", 0.0) is None
        counters = cache.counters()
        assert counters["expirations"] == 1
        assert counters["entries"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)
        with pytest.raises(ValueError):
            ResultCache(ttl_seconds=0.0)


class TestMonotonicTTLRegression:
    """In-memory TTL must age on the monotonic clock, not wall time.

    The historical bug: TTL expiry compared ``time.time()`` against the
    entry's wall-clock ``created`` stamp, so an NTP step forward
    mass-expired every live entry (and a step backward immortalized
    them).  Wall time is only legitimate in *persisted* records.
    """

    def test_wall_clock_jump_does_not_expire_live_entries(
        self, exact_result
    ):
        # Inject the jumping clock through the wall-clock seam.  On the
        # buggy version ``clock`` *was* the wall clock and drove TTL, so
        # the jump mass-expired the entry; now TTL rides the (real,
        # unjumped) monotonic clock and the entry must survive.
        wall = FakeClock(now=1_000_000.0)
        try:
            cache = ResultCache(ttl_seconds=60.0, wall_clock=wall)
        except TypeError:  # single-clock signature: wall drove TTL too
            cache = ResultCache(ttl_seconds=60.0, clock=wall)
        cache.put(["q0", "q1"], "pruneddp++", exact_result)
        wall.now += 3600.0  # NTP steps the wall clock forward one hour
        assert cache.lookup(["q0", "q1"], "pruneddp++", 0.0) is not None
        assert cache.counters()["expirations"] == 0

    def test_backward_wall_jump_does_not_immortalize(self, exact_result):
        mono = FakeClock(now=50.0)
        wall = FakeClock(now=1_000_000.0)
        cache = ResultCache(ttl_seconds=60.0, clock=mono, wall_clock=wall)
        cache.put(["q0", "q1"], "pruneddp++", exact_result)
        wall.now -= 3600.0  # NTP steps the wall clock *backward*
        mono.now += 61.0    # ... but 61 real seconds elapse
        assert cache.lookup(["q0", "q1"], "pruneddp++", 0.0) is None
        assert cache.counters()["expirations"] == 1

    def test_persisted_created_is_wall_clock(self, exact_result):
        mono = FakeClock(now=7.0)
        wall = FakeClock(now=1_000_000.0)
        cache = ResultCache(clock=mono, wall_clock=wall)
        entry = cache.put(["q0", "q1"], "pruneddp++", exact_result)
        assert entry.created == 1_000_000.0   # absolute, persistable
        assert entry.stamp == 7.0             # monotonic, process-local
        assert "stamp" not in entry.to_record()

    def test_load_ages_against_wall_then_ttls_on_monotonic(
        self, exact_result
    ):
        saver = ResultCache(wall_clock=FakeClock(now=1000.0))
        saver.put(["q0", "q1"], "pruneddp++", exact_result)
        buf = io.BytesIO()
        saver.save_to(buf)
        buf.seek(0)
        # Loaded 30 wall-seconds after creation with a 60s TTL: the
        # entry has 30s of monotonic life left, NTP-immune thereafter.
        mono = FakeClock(now=500.0)
        wall = FakeClock(now=1030.0)
        loader = ResultCache(ttl_seconds=60.0, clock=mono, wall_clock=wall)
        assert loader.load_from(buf) == 1
        wall.now += 10_000.0  # wall jump after load must not matter
        mono.now += 29.0
        assert loader.lookup(["q0", "q1"], "pruneddp++", 0.0) is not None
        mono.now += 2.0
        assert loader.lookup(["q0", "q1"], "pruneddp++", 0.0) is None


class TestPersistence:
    def test_round_trip(self, graph, exact_result):
        cache = ResultCache()
        cache.put(["q0", "q1"], "pruneddp++", exact_result)
        install(cache, loose_answer(exact_result, ["q2"], epsilon=0.25))
        buf = io.BytesIO()
        assert cache.save_to(buf) == 2

        buf.seek(0)
        fresh = ResultCache()
        assert fresh.load_from(buf) == 2
        hit = fresh.lookup(["q0", "q1"], "pruneddp++", 0.0)
        assert hit is not None
        assert hit.weight == exact_result.weight
        assert hit.tree_edges  # tree survives the round trip
        # The loose entry kept its proven gap — still refuses tight asks.
        assert fresh.lookup(["q2"], "pruneddp++", 0.1) is None
        assert fresh.lookup(["q2"], "pruneddp++", 0.3) is not None

    def test_rehydrated_result_is_usable(self, graph, exact_result):
        cache = ResultCache()
        cache.put(["q0", "q1"], "pruneddp++", exact_result)
        buf = io.BytesIO()
        cache.save_to(buf)
        buf.seek(0)
        fresh = ResultCache()
        fresh.load_from(buf)
        entry = fresh.lookup(["q0", "q1"], "pruneddp++", 0.0)
        result = entry.to_result(("q0", "q1"))
        assert result.weight == exact_result.weight
        assert result.optimal == exact_result.optimal
        assert result.tree.weight == pytest.approx(exact_result.tree.weight)

    def test_load_skips_expired(self, graph, exact_result):
        clock = FakeClock(now=1000.0)
        cache = ResultCache(clock=clock)
        cache.put(["q0", "q1"], "pruneddp++", exact_result)
        buf = io.BytesIO()
        cache.save_to(buf)
        buf.seek(0)
        late = ResultCache(ttl_seconds=5.0, clock=FakeClock(now=9999.0))
        assert late.load_from(buf) == 0
        assert late.counters()["expirations"] == 1

    def test_live_tighter_entry_wins_over_persisted(self, graph, exact_result):
        loose = ResultCache()
        install(loose, loose_answer(exact_result, ["q0", "q1"], epsilon=0.5))
        buf = io.BytesIO()
        loose.save_to(buf)
        buf.seek(0)
        live = ResultCache()
        live.put(["q0", "q1"], "pruneddp++", exact_result)  # exact, live
        assert live.load_from(buf) == 0
        assert live.lookup(["q0", "q1"], "pruneddp++", 0.0) is not None

    def test_malformed_record_raises_typed(self):
        from repro.store.format import pack_json, write_header, write_record

        buf = io.BytesIO()
        write_header(buf)
        write_record(buf, pack_json({"labels": ["a"]}))  # missing keys
        buf.seek(0)
        with pytest.raises(StoreCorruptError, match="malformed cached-answer"):
            ResultCache().load_from(buf)

    def test_truncated_stream_raises_typed(self, graph, exact_result):
        cache = ResultCache()
        cache.put(["q0", "q1"], "pruneddp++", exact_result)
        buf = io.BytesIO()
        cache.save_to(buf)
        truncated = io.BytesIO(buf.getvalue()[:-5])
        with pytest.raises(StoreCorruptError):
            ResultCache().load_from(truncated)
