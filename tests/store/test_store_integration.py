"""End-to-end store integration: build → attach → serve → persist.

Covers the wiring the tentpole promises: ``GraphIndex.attach_store`` /
``GraphIndex.open`` warm-load the label cache, the executor consults
the result cache *before* its resilience pipeline, traces carry the
``store_hit``/``warm_labels``/``result_cache`` fields, answers persist
across processes (simulated by fresh indexes), corrupt stores fail
closed, and the CLI round-trips ``precompute`` → ``solve/batch
--store``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import GraphIndex, QueryExecutor
from repro.errors import (
    StoreCorruptError,
    StoreError,
    StoreFingerprintError,
)
from repro.graph import generators
from repro.graph.io import save_graph
from repro.store import PrecomputeStore, build_store
from repro.store.builder import DISTANCES_NAME, select_labels


def make_graph(seed: int = 11):
    return generators.random_graph(
        40, 80, num_query_labels=6, label_frequency=3, seed=seed
    )


@pytest.fixture
def graph():
    return make_graph()


@pytest.fixture
def store_dir(graph, tmp_path):
    path = str(tmp_path / "store")
    build_store(graph, path, top_k=4)
    return path


class TestBuilder:
    def test_build_report(self, graph, tmp_path):
        report = build_store(graph, str(tmp_path / "s"), top_k=3)
        assert len(report.labels) == 3
        assert report.bytes_written > 0
        assert "3 label tables" in report.summary()

    def test_select_labels_by_frequency(self, graph):
        chosen = select_labels(graph, top_k=2)
        frequencies = sorted(
            (graph.label_frequency(l) for l in graph.all_labels()),
            reverse=True,
        )
        assert [graph.label_frequency(l) for l in chosen] == frequencies[:2]

    def test_select_labels_workload_heat_wins(self, graph):
        workload = [["q5", "q4"], ["q5"], ["q5", "q3"]]
        chosen = select_labels(graph, top_k=2, workload=workload)
        assert str(chosen[0]) == "q5"

    def test_explicit_labels_override(self, graph, tmp_path):
        report = build_store(
            graph, str(tmp_path / "s"), labels=["q1", "q2"]
        )
        store = PrecomputeStore.open(str(tmp_path / "s"), graph)
        assert sorted(store.labels) == ["q1", "q2"]
        assert sorted(report.labels) == ["q1", "q2"]

    def test_unknown_label_rejected(self, graph, tmp_path):
        with pytest.raises(ValueError, match="ghost"):
            build_store(graph, str(tmp_path / "s"), labels=["ghost"])


class TestStoreTables:
    def test_tables_match_live_dijkstra(self, graph, store_dir):
        from repro.graph.shortest_paths import multi_source_dijkstra

        store = PrecomputeStore.open(store_dir, graph)
        tables = store.load_tables()
        assert tables
        for label, (dist, parent) in tables.items():
            fresh_dist, _ = multi_source_dijkstra(
                graph, list(graph.nodes_with_label(label))
            )
            assert dist == fresh_dist

    def test_fingerprint_mismatch(self, store_dir):
        other = make_graph(seed=99)
        with pytest.raises(StoreFingerprintError):
            PrecomputeStore.open(store_dir, other)

    def test_truncated_distances_fail_closed(self, graph, store_dir):
        path = os.path.join(store_dir, DISTANCES_NAME)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        store = PrecomputeStore.open(store_dir, graph)
        with pytest.raises(StoreCorruptError):
            store.load_tables()

    def test_missing_directory(self, tmp_path):
        with pytest.raises(StoreCorruptError, match="not a directory"):
            PrecomputeStore.open(str(tmp_path / "nope"))


class TestGraphIndexAttachment:
    def test_attach_warms_label_cache(self, graph, store_dir):
        index = GraphIndex(graph)
        warmed = index.attach_store(store_dir)
        assert warmed == 4
        assert index.warm_loaded == 4
        counters = index.cache_info()
        assert counters["warm_loads"] == 4
        assert counters["warm_labels"] == 4
        assert counters["store"]["path"] == store_dir
        assert counters["result_cache"]["entries"] == 0

    def test_warm_label_skips_dijkstra(self, graph, store_dir):
        index = GraphIndex(graph)
        index.attach_store(store_dir)
        hot = index.store.labels[0]
        cold = next(
            str(l) for l in graph.all_labels()
            if str(l) not in index.store.labels
        )
        outcome = index.execute([hot, cold])
        assert outcome.ok
        assert outcome.trace.warm_labels == 1
        assert outcome.trace.store_hit
        # The warmed label was a cache hit; only the cold one ran live.
        assert index.cache.hits == 1
        assert index.cache.misses == 1
        assert index.cache.is_warm(hot) and not index.cache.is_warm(cold)

    def test_attach_rejects_wrong_graph(self, store_dir):
        index = GraphIndex(make_graph(seed=99))
        with pytest.raises(StoreFingerprintError):
            index.attach_store(store_dir)
        assert index.store is None

    def test_open_reloads_graph_from_stem(self, graph, tmp_path):
        stem = str(tmp_path / "g")
        save_graph(graph, stem)
        reloaded_graph = __import__(
            "repro.graph.io", fromlist=["load_graph"]
        ).load_graph(stem)
        path = str(tmp_path / "store")
        build_store(reloaded_graph, path, top_k=3, graph_stem=stem)
        index = GraphIndex.open(path)
        assert index.store is not None
        assert index.warm_loaded == 3
        outcome = index.execute(["q0", "q1"])
        assert outcome.ok

    def test_open_without_stem_fails_closed(self, graph, store_dir):
        with pytest.raises(StoreError, match="graph_stem"):
            GraphIndex.open(store_dir)
        # ... but works when the graph is passed explicitly.
        index = GraphIndex.open(store_dir, graph)
        assert index.warm_loaded == 4


class TestResultCacheWiring:
    def test_execute_writes_back_and_hits(self, graph, store_dir):
        index = GraphIndex(graph)
        index.attach_store(store_dir)
        first = index.execute(["q0", "q1"])
        assert first.ok
        assert first.trace.result_cache == "miss"
        second = index.execute(["q0", "q1"])
        assert second.ok
        assert second.trace.result_cache == "hit"
        assert second.trace.store_hit
        assert second.result.weight == first.result.weight
        assert second.trace.stats is None  # served, not searched

    def test_epsilon_rule_through_index(self, graph, store_dir):
        index = GraphIndex(graph)
        index.attach_store(store_dir)
        index.execute(["q0", "q1"])  # exact answer cached
        hit = index.execute(["q0", "q1"], epsilon=0.5)
        assert hit.trace.result_cache == "hit"  # exact serves loose

    def test_persistence_across_indexes(self, graph, store_dir):
        index = GraphIndex(graph)
        index.attach_store(store_dir)
        first = index.execute(["q1", "q2"])
        assert index.save_results() == 1

        fresh = GraphIndex(graph)
        fresh.attach_store(store_dir)
        served = fresh.execute(["q1", "q2"])
        assert served.trace.result_cache == "hit"
        assert served.result.weight == first.result.weight

    def test_executor_consults_before_admission(self, graph, store_dir):
        """A cached answer must bypass an admission policy that would
        reject the query if it actually ran."""
        from repro.service import AdmissionPolicy

        index = GraphIndex(graph)
        index.attach_store(store_dir)
        index.execute(["q0", "q1", "q2"])  # populate
        index.save_results()

        fresh = GraphIndex(graph)
        fresh.attach_store(store_dir)
        with QueryExecutor(
            fresh,
            max_workers=1,
            admission=AdmissionPolicy(max_estimated_states=1),  # rejects all
        ) as executor:
            outcomes = executor.run_batch([["q0", "q1", "q2"], ["q3", "q4"]])
        cached, cold = outcomes
        assert cached.ok and cached.trace.result_cache == "hit"
        assert cold.trace.status == "rejected"  # uncached ones still gated

    def test_trace_json_round_trip(self, graph, store_dir):
        index = GraphIndex(graph)
        index.attach_store(store_dir)
        index.execute(["q0", "q1"])
        trace = index.execute(["q0", "q1"]).trace
        record = json.loads(trace.to_json())
        assert record["store_hit"] is True
        assert record["result_cache"] == "hit"
        assert "warm_labels" in record

    def test_bounds_cache_in_trace(self, graph):
        index = GraphIndex(graph)
        outcome = index.execute(
            ["q0", "q1", "q2"], algorithm="pruneddp++"
        )
        info = outcome.trace.bounds_cache
        assert info is not None
        assert info["size"] >= 0 and "evictions" in info


class TestCLI:
    @pytest.fixture
    def stem(self, graph, tmp_path):
        stem = str(tmp_path / "g")
        save_graph(graph, stem)
        return stem

    @pytest.fixture
    def query_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text("q0,q1\nq2,q3\n", encoding="utf-8")
        return str(path)

    def test_precompute_solve_roundtrip(
        self, stem, query_file, tmp_path, capsys
    ):
        from repro.cli import main

        out = str(tmp_path / "store")
        code = main([
            "precompute", "--graph", stem, "--out", out,
            "--queries", query_file, "--solve", "--top-k", "4",
        ])
        assert code == 0
        assert "pre-solved 2/2" in capsys.readouterr().out

        traces = str(tmp_path / "traces.jsonl")
        code = main([
            "batch", "--graph", stem, "--queries", query_file,
            "--store", out, "--traces", traces, "--quiet",
        ])
        assert code == 0
        assert "2 result-cache hits" in capsys.readouterr().out
        records = [
            json.loads(line) for line in open(traces, encoding="utf-8")
        ]
        assert all(r["result_cache"] == "hit" for r in records)
        assert all(r["store_hit"] for r in records)

    def test_solve_store_matches_cold(self, stem, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "store")
        assert main(["precompute", "--graph", stem, "--out", out]) == 0
        capsys.readouterr()
        main(["solve", "--graph", stem, "--labels", "q0,q1", "--quiet"])
        cold = float(capsys.readouterr().out.strip())
        main([
            "solve", "--graph", stem, "--labels", "q0,q1",
            "--store", out, "--quiet",
        ])
        warm = float(capsys.readouterr().out.strip())
        assert warm == pytest.approx(cold)

    def test_corrupt_store_falls_back_cold(self, stem, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "store")
        assert main(["precompute", "--graph", stem, "--out", out]) == 0
        distances = os.path.join(out, DISTANCES_NAME)
        data = open(distances, "rb").read()
        with open(distances, "wb") as handle:
            handle.write(data[: len(data) // 3])
        capsys.readouterr()
        code = main([
            "solve", "--graph", stem, "--labels", "q0,q1",
            "--store", out, "--quiet",
        ])
        captured = capsys.readouterr()
        assert code == 0  # still answered, cold
        assert "unusable" in captured.err
        float(captured.out.strip())

    def test_precompute_solve_requires_queries(self, stem, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "precompute", "--graph", stem,
            "--out", str(tmp_path / "s"), "--solve",
        ])
        assert code == 2
        assert "--solve requires --queries" in capsys.readouterr().err
