"""CLI tests (driving main() in-process)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graph import generators
from repro.graph.io import save_graph


@pytest.fixture
def stored_graph(tmp_path):
    graph = generators.random_graph(
        30, 60, num_query_labels=4, label_frequency=3, seed=5
    )
    stem = str(tmp_path / "g")
    save_graph(graph, stem)
    return stem, graph


class TestSolve:
    def test_solve_prints_result(self, stored_graph, capsys):
        stem, _ = stored_graph
        code = main(["solve", "--graph", stem, "--labels", "q0,q1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "weight" in out
        assert "optimal   : True" in out

    def test_solve_quiet(self, stored_graph, capsys):
        stem, graph = stored_graph
        code = main(
            ["solve", "--graph", stem, "--labels", "q0,q1", "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out.strip()
        float(out)  # a bare number

    def test_solve_matches_library(self, stored_graph, capsys):
        from repro import solve_gst

        stem, graph = stored_graph
        main(["solve", "--graph", stem, "--labels", "q0,q1,q2", "--quiet"])
        cli_weight = float(capsys.readouterr().out.strip())
        # The stored graph stringifies labels; query by the same strings.
        lib_weight = solve_gst(graph, ["q0", "q1", "q2"]).weight
        assert cli_weight == pytest.approx(lib_weight)

    def test_solve_algorithms(self, stored_graph, capsys):
        stem, _ = stored_graph
        weights = set()
        for algorithm in ("basic", "pruneddp", "pruneddp++", "dpbf"):
            main([
                "solve", "--graph", stem, "--labels", "q0,q1",
                "--algorithm", algorithm, "--quiet",
            ])
            weights.add(capsys.readouterr().out.strip())
        assert len(weights) == 1

    def test_solve_top_r(self, stored_graph, capsys):
        stem, _ = stored_graph
        code = main(
            ["solve", "--graph", stem, "--labels", "q0,q1", "--top", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# answer 1" in out

    def test_solve_exact_top_r(self, stored_graph, capsys):
        stem, _ = stored_graph
        code = main([
            "solve", "--graph", stem, "--labels", "q0,q1",
            "--top", "2", "--exact-top",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "# answer 1" in out

    def test_solve_json(self, stored_graph, capsys):
        import json

        stem, _ = stored_graph
        code = main(
            ["solve", "--graph", stem, "--labels", "q0,q1", "--json"]
        )
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["optimal"] is True
        assert record["tree"]["edges"] is not None

    def test_solve_dot(self, stored_graph, capsys):
        stem, _ = stored_graph
        code = main(
            ["solve", "--graph", stem, "--labels", "q0,q1", "--dot"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("graph gst {")
        assert "--" in out

    def test_solve_chart(self, stored_graph, capsys):
        stem, _ = stored_graph
        code = main(
            ["solve", "--graph", stem, "--labels", "q0,q1,q2", "--chart"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "LB" in out

    def test_solve_progress_events(self, stored_graph, capsys):
        stem, _ = stored_graph
        main(["solve", "--graph", stem, "--labels", "q0,q1", "--progress"])
        err = capsys.readouterr().err
        assert "UB=" in err

    def test_solve_infeasible_is_clean_error(self, stored_graph, capsys):
        stem, _ = stored_graph
        code = main(["solve", "--graph", stem, "--labels", "q0,ghost"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_graph_file(self, tmp_path, capsys):
        code = main(
            ["solve", "--graph", str(tmp_path / "nope"), "--labels", "a"]
        )
        assert code == 2


class TestGenerate:
    @pytest.mark.parametrize("kind", ["dblp", "imdb", "powerlaw", "road", "random"])
    def test_generate_each_kind(self, kind, tmp_path, capsys):
        stem = str(tmp_path / kind)
        code = main([
            "generate", "--kind", kind, "--out", stem, "--size", "60",
            "--query-labels", "4", "--label-frequency", "3",
        ])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        # Round trip + solvable.
        from repro import solve_gst
        from repro.graph.io import load_graph

        graph = load_graph(stem)
        result = solve_gst(graph, ["q0", "q1"])
        assert result.optimal


class TestInfo:
    def test_info(self, stored_graph, capsys):
        stem, graph = stored_graph
        code = main(["info", "--graph", stem])
        assert code == 0
        out = capsys.readouterr().out
        assert f"nodes        : {graph.num_nodes}" in out
        assert "max degree" in out


class TestBench:
    def test_bench_fig10_tiny(self, capsys):
        code = main([
            "bench", "--experiment", "fig10",
            "--dataset", "dblp", "--scale", "tiny",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "progressive bounds" in out

    def test_bench_table2_tiny(self, capsys):
        code = main([
            "bench", "--experiment", "table2",
            "--dataset", "dblp", "--scale", "tiny",
        ])
        assert code == 0
        assert "BANKS-II" in capsys.readouterr().out


class TestBatch:
    @pytest.fixture
    def query_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text(
            "# comment lines and blanks are skipped\n"
            "\n"
            "q0,q1\n"
            "q1, q2 ,q3\n"
            "q0,ghost\n",
            encoding="utf-8",
        )
        return str(path)

    def test_batch_mixed_outcomes(self, stored_graph, query_file, capsys):
        stem, _ = stored_graph
        code = main(["batch", "--graph", stem, "--queries", query_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 queries (2 ok, 1 failed)" in out
        assert "infeasible" in out
        assert "q/s" in out

    def test_batch_quiet_prints_only_summary(
        self, stored_graph, query_file, capsys
    ):
        stem, _ = stored_graph
        code = main(
            ["batch", "--graph", stem, "--queries", query_file, "--quiet"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1 and lines[0].startswith("batch:")

    def test_batch_writes_jsonl_traces(
        self, stored_graph, query_file, tmp_path, capsys
    ):
        import json

        stem, graph = stored_graph
        traces = str(tmp_path / "traces.jsonl")
        code = main([
            "batch", "--graph", stem, "--queries", query_file,
            "--traces", traces, "--max-workers", "2",
        ])
        assert code == 0
        with open(traces, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        # The sink streams in completion order; all queries must appear.
        assert sorted(record["query_id"] for record in records) == [0, 1, 2]
        statuses = {record["query_id"]: record["status"] for record in records}
        assert statuses[0] == "ok" and statuses[2] == "infeasible"
        capsys.readouterr()

    def test_batch_matches_solve(self, stored_graph, tmp_path, capsys):
        from repro import solve_gst

        stem, graph = stored_graph
        path = tmp_path / "one.txt"
        path.write_text("q0,q1\n", encoding="utf-8")
        code = main(["batch", "--graph", stem, "--queries", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        expected = solve_gst(graph, ["q0", "q1"]).weight
        assert f"weight={expected:g}" in out

    def test_batch_all_failed_exit_code(self, stored_graph, tmp_path, capsys):
        stem, _ = stored_graph
        path = tmp_path / "bad.txt"
        path.write_text("ghost,phantom\n", encoding="utf-8")
        code = main(["batch", "--graph", stem, "--queries", str(path)])
        assert code == 2
        capsys.readouterr()

    def test_batch_empty_query_file_is_clean_error(
        self, stored_graph, tmp_path, capsys
    ):
        stem, _ = stored_graph
        path = tmp_path / "empty.txt"
        path.write_text("# nothing here\n", encoding="utf-8")
        code = main(["batch", "--graph", stem, "--queries", str(path)])
        assert code == 2
        assert "no queries found" in capsys.readouterr().err

    def test_batch_missing_query_file(self, stored_graph, capsys):
        stem, _ = stored_graph
        code = main(["batch", "--graph", stem, "--queries", "/nope/missing"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_batch_invalid_limits_are_clean_errors(
        self, stored_graph, query_file, capsys
    ):
        stem, _ = stored_graph
        for flags in (
            ["--max-workers", "0"],
            ["--epsilon", "-1"],
            ["--deadline", "-1"],
        ):
            code = main(
                ["batch", "--graph", stem, "--queries", query_file, *flags]
            )
            assert code == 2, flags
            assert "error:" in capsys.readouterr().err

    def test_batch_deadline_zero_skips_everything(
        self, stored_graph, query_file, capsys
    ):
        stem, _ = stored_graph
        code = main([
            "batch", "--graph", stem, "--queries", query_file,
            "--deadline", "0",
        ])
        assert code == 2  # nothing succeeded
        assert "skipped" in capsys.readouterr().out


class TestVerify:
    def test_verify_agreeing_instance(self, stored_graph, capsys):
        stem, _ = stored_graph
        code = main(["verify", "--graph", stem, "--labels", "q0,q1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tiers agree" in out and "OK" in out
        # 30 nodes is past the brute-force cutoff; the five solvers run.
        assert "dpbf" in out and "pruneddp++" in out
        assert "certified" in out

    def test_verify_quiet_keeps_verdict_only(self, stored_graph, capsys):
        stem, _ = stored_graph
        code = main(
            ["verify", "--graph", stem, "--labels", "q0,q1", "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 1

    def test_verify_algorithm_subset(self, stored_graph, capsys):
        stem, _ = stored_graph
        code = main([
            "verify", "--graph", stem, "--labels", "q0,q1",
            "--algorithm", "dpbf", "--algorithm", "basic",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dpbf" in out and "pruneddp++" not in out

    def test_verify_infeasible_still_agrees(self, tmp_path, capsys):
        graph = generators.Graph()
        graph.add_node(labels=["a"])
        graph.add_node(labels=["b"])
        stem = str(tmp_path / "islands")
        save_graph(graph, stem)
        code = main(["verify", "--graph", stem, "--labels", "a,b"])
        assert code == 0
        assert "infeasible" in capsys.readouterr().out

    def test_verify_unknown_label_agrees_infeasible(self, stored_graph, capsys):
        # Every tier raises the same typed error for an absent label, so
        # the differential verdict is agreement on infeasibility — not a
        # crash and not a disagreement.
        stem, _ = stored_graph
        code = main(["verify", "--graph", stem, "--labels", "q0,ghost"])
        assert code == 0
        assert "infeasible" in capsys.readouterr().out


class TestFuzz:
    def test_fuzz_small_sweep_clean(self, tmp_path, capsys):
        out_dir = str(tmp_path / "failures")
        code = main([
            "fuzz", "--seed", "0", "--rounds", "5", "--max-nodes", "10",
            "--metamorphic", "5", "--out", out_dir, "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "5 rounds" in out and "OK" in out

    def test_fuzz_reports_progress(self, tmp_path, capsys):
        code = main([
            "fuzz", "--seed", "0", "--rounds", "4", "--max-nodes", "10",
            "--out", str(tmp_path / "failures"),
        ])
        assert code == 0
        assert "fuzz:" in capsys.readouterr().err

    def test_fuzz_rejects_bad_rounds(self, tmp_path, capsys):
        code = main(
            ["fuzz", "--rounds", "0", "--out", str(tmp_path / "failures")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestResume:
    """batch --checkpoint-dir leaves resumable work; resume finishes it."""

    @pytest.fixture
    def hard_graph(self, tmp_path):
        # >1000 engine pops on the 5-label query below: the engine
        # checks limits every 256 pops, so smaller instances prove
        # optimality before --max-states can ever interrupt them.
        graph = generators.random_graph(
            400, 1200, num_query_labels=6, label_frequency=8, seed=7
        )
        stem = str(tmp_path / "hard")
        save_graph(graph, stem)
        return stem

    @pytest.fixture
    def hard_queries(self, tmp_path):
        path = tmp_path / "hard-queries.txt"
        path.write_text("q0,q1,q2,q3,q4\n", encoding="utf-8")
        return str(path)

    def test_interrupted_batch_then_resume(
        self, hard_graph, hard_queries, tmp_path, capsys
    ):
        ckpts = str(tmp_path / "ckpts")
        code = main([
            "batch", "--graph", hard_graph, "--queries", hard_queries,
            "--max-states", "150", "--checkpoint-dir", ckpts,
            "--checkpoint-every", "50", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "durability:" in out and "checkpoints written" in out
        import os

        files = os.listdir(ckpts)
        assert len(files) == 1 and files[0].endswith(".ckpt")

        code = main(["resume", "--graph", hard_graph,
                     "--checkpoint-dir", ckpts])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimal" in out
        assert "resume: 1 completed, 0 failed of 1" in out
        # Proven-optimal finishes discard their checkpoints.
        assert os.listdir(ckpts) == []

    def test_resume_single_file_json(
        self, hard_graph, hard_queries, tmp_path, capsys
    ):
        import json
        import os

        ckpts = str(tmp_path / "ckpts")
        main([
            "batch", "--graph", hard_graph, "--queries", hard_queries,
            "--max-states", "150", "--checkpoint-dir", ckpts,
            "--checkpoint-every", "50", "--quiet",
        ])
        capsys.readouterr()
        path = os.path.join(ckpts, os.listdir(ckpts)[0])
        code = main([
            "resume", "--graph", hard_graph, "--checkpoint", path, "--json",
        ])
        assert code == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("{")
        ]
        record = json.loads(lines[0])
        assert record["optimal"] is True
        assert record["resumed_from"] == path
        assert record["checkpoint"] == path

    def test_resume_corrupt_checkpoint_fails_typed(
        self, hard_graph, hard_queries, tmp_path, capsys
    ):
        import os

        ckpts = str(tmp_path / "ckpts")
        main([
            "batch", "--graph", hard_graph, "--queries", hard_queries,
            "--max-states", "150", "--checkpoint-dir", ckpts,
            "--checkpoint-every", "50", "--quiet",
        ])
        capsys.readouterr()
        path = os.path.join(ckpts, os.listdir(ckpts)[0])
        with open(path, "r+b") as fh:
            fh.seek(-1, 2)
            fh.write(b"\xff")
        code = main(["resume", "--graph", hard_graph, "--checkpoint", path])
        assert code == 2
        captured = capsys.readouterr()
        assert "checksum" in captured.err
        assert "1 failed" in captured.out

    def test_resume_wrong_graph_fails_typed(
        self, hard_graph, hard_queries, stored_graph, tmp_path, capsys
    ):
        import os

        ckpts = str(tmp_path / "ckpts")
        main([
            "batch", "--graph", hard_graph, "--queries", hard_queries,
            "--max-states", "150", "--checkpoint-dir", ckpts,
            "--checkpoint-every", "50", "--quiet",
        ])
        capsys.readouterr()
        other_stem, _ = stored_graph
        path = os.path.join(ckpts, os.listdir(ckpts)[0])
        code = main(["resume", "--graph", other_stem, "--checkpoint", path])
        assert code == 2
        assert "different graph" in capsys.readouterr().err

    def test_resume_empty_dir_is_noop(self, hard_graph, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = main([
            "resume", "--graph", hard_graph, "--checkpoint-dir", str(empty),
        ])
        assert code == 0
        assert "nothing to do" in capsys.readouterr().out

    def test_resume_needs_exactly_one_source(self, hard_graph, capsys):
        assert main(["resume", "--graph", hard_graph]) == 2
        assert "error:" in capsys.readouterr().err

    def test_batch_process_isolation(
        self, hard_graph, hard_queries, tmp_path, capsys
    ):
        ckpts = str(tmp_path / "ckpts")
        code = main([
            "batch", "--graph", hard_graph, "--queries", hard_queries,
            "--isolation", "process", "--checkpoint-dir", ckpts,
            "--checkpoint-every", "100", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 ok" in out and "process workers" in out
