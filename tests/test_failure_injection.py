"""Failure injection: hostile callbacks, hostile data, adversarial inputs.

A production library's contract under misuse matters as much as its
happy path: exceptions raised by *user callbacks* must propagate (not
be swallowed into wrong answers), hostile strings must not corrupt
renderings, and adversarial numeric inputs must be rejected at the
boundary rather than produce garbage later.  The final class injects
faults *underneath the executor* — solvers that hang, crash mid-pop,
or fail persistently — and checks that the resilience layer turns each
into a clean, attributed outcome.
"""

from __future__ import annotations

import time

import pytest

import repro.core.algorithms as algorithms_mod
import repro.core.solver as solver_mod
from repro import Graph, GraphError, QueryError, SteinerTree, solve_gst
from repro.core import BasicSolver, PrunedDPPlusPlusSolver
from repro.core.budget import CancellationToken
from repro.core.engine import SearchEngine
from repro.errors import QueryCancelledError
from repro.graph import generators
from repro.service import (
    BreakerPolicy,
    GraphIndex,
    QueryExecutor,
    RetryPolicy,
)


class CallbackBoom(Exception):
    pass


class TestHostileCallbacks:
    def test_on_progress_exception_propagates(self):
        g = generators.random_graph(
            20, 40, num_query_labels=3, label_frequency=3, seed=1
        )

        def boom(point):
            raise CallbackBoom("user callback failed")

        with pytest.raises(CallbackBoom):
            BasicSolver(g, ["q0", "q1", "q2"], on_progress=boom).solve()

    def test_on_feasible_exception_propagates(self):
        g = generators.random_graph(
            20, 40, num_query_labels=3, label_frequency=3, seed=2
        )

        def boom(tree):
            raise CallbackBoom()

        with pytest.raises(CallbackBoom):
            BasicSolver(g, ["q0", "q1", "q2"], on_feasible=boom).solve()

    def test_callback_raising_late_leaves_no_partial_corruption(self):
        """A callback that fails after N events: re-solving cleanly
        afterwards must give the right answer (no shared-state leak)."""
        g = generators.random_graph(
            25, 55, num_query_labels=3, label_frequency=3, seed=3
        )
        labels = ["q0", "q1", "q2"]
        clean = PrunedDPPlusPlusSolver(g, labels).solve()

        calls = {"n": 0}

        def flaky(point):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise CallbackBoom()

        with pytest.raises(CallbackBoom):
            PrunedDPPlusPlusSolver(g, labels, on_progress=flaky).solve()
        again = PrunedDPPlusPlusSolver(g, labels).solve()
        assert again.weight == pytest.approx(clean.weight)


class TestHostileData:
    def test_hostile_label_strings(self):
        """Labels containing separators/escapes flow through solve,
        render, and dot export without corruption."""
        hostile = ["a\tb", "c\nd", "<svg>", "q' OR 1=1"]
        g = Graph()
        nodes = [g.add_node(labels=[label]) for label in hostile]
        for u, v in zip(nodes, nodes[1:]):
            g.add_edge(u, v, 1.0)
        result = solve_gst(g, hostile)
        assert result.optimal
        result.tree.validate(g, hostile)
        # Renderings must not crash and DOT/SVG must stay parseable.
        result.tree.render(g)
        result.tree.to_dot(g)
        from xml.etree import ElementTree

        from repro.viz import tree_to_svg

        ElementTree.fromstring(tree_to_svg(result.tree, g))

    def test_non_string_hashable_labels(self):
        g = Graph()
        a = g.add_node(labels=[(1, "tuple"), frozenset({"f"})])
        b = g.add_node(labels=[42])
        g.add_edge(a, b, 1.0)
        result = solve_gst(g, [(1, "tuple"), 42])
        assert result.weight == pytest.approx(1.0)

    def test_extreme_weights(self):
        g = Graph()
        a = g.add_node(labels=["x"])
        b = g.add_node(labels=["y"])
        c = g.add_node()
        g.add_edge(a, c, 1e-12)
        g.add_edge(c, b, 1e12)
        result = solve_gst(g, ["x", "y"])
        assert result.optimal
        assert result.weight == pytest.approx(1e12 + 1e-12)


class TestBoundaryRejection:
    def test_unhashable_label_rejected_at_construction(self):
        g = Graph()
        with pytest.raises(TypeError):
            g.add_node(labels=[["unhashable", "list"]])

    def test_query_with_unhashable_rejected(self):
        g = Graph()
        g.add_node(labels=["x"])
        with pytest.raises(TypeError):
            solve_gst(g, [{"a": 1}])

    def test_empty_graph_query(self):
        with pytest.raises(QueryError):
            solve_gst(Graph(), ["x"])

    def test_steiner_tree_from_corrupt_edges(self):
        g = Graph()
        g.add_node()
        g.add_node()
        g.add_edge(0, 1, 1.0)
        with pytest.raises(GraphError):
            SteinerTree([(0, 5, 1.0)]).validate(g)


class TestExecutorFaultInjection:
    """Faults injected underneath the executor, one per mechanism."""

    @pytest.fixture
    def index(self):
        g = generators.random_graph(
            60, 130, num_query_labels=6, label_frequency=4, seed=33
        )
        return GraphIndex(g)

    def test_hanging_solver_caught_by_cancellation(self, index, monkeypatch):
        """A solver that wedges forever: cancellation is the only way
        out, and it must produce a clean "cancelled" outcome."""
        real = solver_mod.ALGORITHMS["pruneddp++"]

        class Hanging(real):
            def run_search(self, context, prepared=None):
                while not self.budget.cancelled():
                    time.sleep(0.005)
                # The wedge noticed the token; the engine confirms it.
                return super().run_search(context, prepared)

        monkeypatch.setitem(solver_mod.ALGORITHMS, "pruneddp++", Hanging)
        token = CancellationToken()
        with QueryExecutor(index, max_workers=1) as executor:
            future = executor.submit(["q0", "q1"], cancel_token=token)
            time.sleep(0.05)
            assert not future.done()  # genuinely wedged
            token.cancel("watchdog timeout")
            outcome = future.result(timeout=5.0)
        assert outcome.trace.status == "cancelled"
        assert outcome.trace.cancelled
        assert isinstance(outcome.error, QueryCancelledError)
        assert "watchdog timeout" in str(outcome.error)

    def test_raise_on_nth_pop_caught_by_retry_ladder(self, monkeypatch):
        """An engine that crashes at its first limit check — hundreds
        of pops into a real search — is rescued one rung down."""
        g = generators.random_graph(
            200, 500, num_query_labels=6, label_frequency=5, seed=11
        )
        crashes = {"left": 1}

        class CrashOnNthPop(SearchEngine):
            def _limits_hit(self):
                if crashes["left"] > 0:
                    crashes["left"] -= 1
                    raise RuntimeError(
                        f"injected crash at pop {self.stats.states_popped}"
                    )
                return super()._limits_hit()

        monkeypatch.setattr(algorithms_mod, "SearchEngine", CrashOnNthPop)
        with QueryExecutor(
            GraphIndex(g), retry_policy=RetryPolicy(max_retries=2)
        ) as executor:
            outcome = executor.run_batch([[f"q{i}" for i in range(6)]])[0]
        assert outcome.ok
        assert outcome.trace.requested_algorithm == "pruneddp++"
        assert outcome.algorithm == "pruneddp"
        assert outcome.trace.degraded
        assert outcome.trace.attempts == 2
        assert "injected crash at pop" in outcome.trace.retries[0]["error"]

    def test_persistent_failure_trips_breaker_then_recovers(
        self, index, monkeypatch
    ):
        real = solver_mod.ALGORITHMS["pruneddp++"]
        behavior = {"healthy": False, "calls": 0}

        class Unreliable(real):
            def run_search(self, context, prepared=None):
                behavior["calls"] += 1
                if not behavior["healthy"]:
                    raise RuntimeError("backend down")
                return super().run_search(context, prepared)

        monkeypatch.setitem(solver_mod.ALGORITHMS, "pruneddp++", Unreliable)
        executor = QueryExecutor(
            index,
            max_workers=1,
            retry_policy=RetryPolicy(max_retries=1),
            breaker_policy=BreakerPolicy(
                failure_threshold=2, cooldown_seconds=0.05
            ),
        )
        with executor:
            # Every query is rescued by the ladder while failures mount.
            for labels in (["q0", "q1"], ["q2", "q3"]):
                rescued = executor.run_batch([labels])[0]
                assert rescued.ok and rescued.algorithm == "pruneddp"
            assert executor.breaker_snapshot()["pruneddp++"]["state"] == "open"
            # Open breaker: load is shed without touching the backend.
            calls_before = behavior["calls"]
            shed = executor.run_batch([["q4", "q5"]])[0]
            assert shed.ok
            assert behavior["calls"] == calls_before
            assert shed.trace.breaker_skips == ["pruneddp++"]
            # The outage ends; the half-open probe heals the breaker.
            behavior["healthy"] = True
            time.sleep(0.06)
            probe = executor.run_batch([["q0", "q2"]])[0]
            assert probe.ok and probe.algorithm == "pruneddp++"
            assert executor.breaker_snapshot()["pruneddp++"]["state"] == "closed"


class TestDirectedSerialization:
    def test_directed_result_to_dict_round_trips(self):
        import json

        from repro.core import DirectedGSTSolver
        from repro.graph.digraph import DiGraph

        g = DiGraph()
        a = g.add_node(labels=["x"])
        b = g.add_node(labels=["y"])
        g.add_edge(a, b, 2.0)
        result = DirectedGSTSolver(g, ["x", "y"]).solve()
        record = json.loads(json.dumps(result.to_dict()))
        assert record["weight"] == pytest.approx(2.0)
        assert record["tree"]["edges"] == [[a, b, 2.0]]
