"""End-to-end integration flows across subsystems.

Each test chains several components the way a downstream user would,
asserting consistency at every seam: generation → persistence →
prepared solving → answer rendering → serialization; relational
modelling → both answer models; harness → reporting → plotting.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    PrunedDPPlusPlusSolver,
    SteinerTree,
    solve_gst,
    top_r_trees,
)
from repro.apps import Database, ExpertNetwork, KeywordSearchEngine
from repro.bench import make_workload, run_suite
from repro.bench.plotting import progressive_chart
from repro.bench.reporting import suite_to_dict
from repro.core import PreparedGraph, exact_top_r_trees, steiner_tree
from repro.graph import generators
from repro.graph.io import load_graph, save_graph
from repro.viz import trace_to_svg, tree_to_svg


class TestGenerateStoreSolveRender:
    def test_full_pipeline(self, tmp_path):
        # 1. Generate and persist.
        g = generators.powerlaw(
            200, num_query_labels=6, label_frequency=5, seed=71
        )
        stem = str(tmp_path / "net")
        save_graph(g, stem)
        # 2. Reload and prepare.
        loaded = load_graph(stem)
        prepared = PreparedGraph(loaded)
        # 3. Solve two overlapping queries.
        first = prepared.solve(["q0", "q1", "q2"])
        second = prepared.solve(["q1", "q2", "q3"])
        assert first.optimal and second.optimal
        assert prepared.cache.hits >= 2  # q1, q2 reused
        # 4. Answers validate against the *loaded* graph.
        first.tree.validate(loaded, ["q0", "q1", "q2"])
        # 5. Render every way.
        ascii_out = first.tree.render(loaded)
        assert ascii_out.startswith("*")
        svg = tree_to_svg(first.tree, loaded)
        assert svg.startswith("<svg")
        dot = first.tree.to_dot(loaded)
        assert dot.startswith("graph")
        # 6. Serialize and round-trip.
        record = json.loads(json.dumps(first.to_dict()))
        assert record["weight"] == pytest.approx(first.weight)
        rebuilt = SteinerTree(
            [(u, v, w) for u, v, w in record["tree"]["edges"]],
            nodes=record["tree"]["nodes"],
        )
        assert rebuilt.weight == pytest.approx(first.weight)
        rebuilt.validate(loaded, ["q0", "q1", "q2"])


class TestRelationalBothModels:
    def build_db(self) -> Database:
        db = Database()
        people = db.create_relation("person", ["name"])
        projects = db.create_relation("project", ["title"])
        people.insert("ana", name="Ana Analyst")
        people.insert("ben", name="Ben Builder")
        projects.insert("etl", title="Streaming ETL Pipeline")
        projects.insert("viz", title="Dashboard Visualization")
        db.add_reference("person", "ana", "project", "etl")
        db.add_reference("person", "ben", "project", "viz")
        db.add_reference("project", "viz", "project", "etl", strength=2.0)
        return db

    def test_undirected_vs_directed_consistency(self):
        db = self.build_db()
        undirected = KeywordSearchEngine(db)
        directed = KeywordSearchEngine(db, directed=True)
        query = ["streaming", "dashboard"]
        u = undirected.search(query)
        d = directed.search(query)
        # Directed answers are also feasible undirected answers, so the
        # undirected optimum never exceeds the directed one.
        assert u.weight <= d.weight + 1e-9
        assert u.optimal and d.optimal
        # Both renderings mention both projects.
        for answer, engine in ((u, undirected), (d, directed)):
            out = answer.render(engine.graph)
            assert "etl" in out and "viz" in out

    def test_team_and_steiner_agree_on_reduction(self):
        """find_team == steiner_tree when every skill is unique."""
        net = ExpertNetwork()
        for name, skills in (
            ("a", ["s1"]), ("b", ["s2"]), ("c", []), ("d", ["s3"]),
        ):
            net.add_expert(name, skills)
        net.add_collaboration("a", "c", 1.0)
        net.add_collaboration("b", "c", 2.0)
        net.add_collaboration("c", "d", 3.0)
        team = net.find_team(["s1", "s2", "s3"])
        terminals = [net.graph.node_by_name(x) for x in ("a", "b", "d")]
        st = steiner_tree(net.graph, terminals)
        assert team.communication_cost == pytest.approx(st.weight)


class TestHarnessToReportToChart:
    def test_suite_record_chart_chain(self):
        graph, queries = make_workload(
            "roadusa", scale="tiny", knum=3, kwf=4, num_queries=2, seed=72
        )
        suite = run_suite(graph, list(queries), ("Basic", "PrunedDP++"))
        record = suite_to_dict(suite, metadata={"purpose": "integration"})
        json.dumps(record)
        # Rebuild a chart from the serialized trace.
        trace = record["algorithms"]["PrunedDP++"]["runs"][0]["trace"]
        tuples = [
            (t, float("inf") if ub == "inf" else ub, lb)
            for t, ub, lb in trace
        ]
        chart = progressive_chart({"PrunedDP++": tuples})
        assert "LB" in chart
        svg = trace_to_svg({"PrunedDP++": tuples})
        assert svg.startswith("<svg")


class TestTopRConsistencyChain:
    def test_all_topr_paths_agree_on_rank_one(self):
        g = generators.dblp_like(
            num_papers=100, num_authors=60,
            num_query_labels=8, label_frequency=4, seed=73,
        )
        labels = ["q0", "q1", "q2"]
        direct = solve_gst(g, labels).weight
        harvest = top_r_trees(g, labels, 3)[0].weight
        exact = exact_top_r_trees(g, labels, 3)[0].weight
        assert direct == pytest.approx(harvest)
        assert direct == pytest.approx(exact)

    def test_epsilon_then_exact_refinement(self):
        """Anytime answer first, exact refinement after — the paper's
        interactive usage pattern."""
        g = generators.imdb_like(
            num_movies=150, num_people=100,
            num_query_labels=8, label_frequency=5, seed=74,
        )
        labels = ["q0", "q1", "q2", "q3"]
        quick = PrunedDPPlusPlusSolver(g, labels, epsilon=1.0).solve()
        exact = PrunedDPPlusPlusSolver(g, labels).solve()
        assert quick.weight <= 2.0 * exact.weight + 1e-9
        assert exact.weight <= quick.weight + 1e-9
        assert quick.stats.states_popped <= exact.stats.states_popped
