"""Package-surface sanity: exports resolve, version, metadata coherence."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.graph",
            "repro.core",
            "repro.baselines",
            "repro.apps",
            "repro.bench",
            "repro.viz",
            "repro.cli",
        ],
    )
    def test_submodule_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_error_hierarchy(self):
        from repro import (
            GraphError,
            InfeasibleQueryError,
            LimitExceededError,
            QueryError,
            ReproError,
        )

        assert issubclass(GraphError, ReproError)
        assert issubclass(QueryError, ReproError)
        assert issubclass(InfeasibleQueryError, QueryError)
        assert issubclass(LimitExceededError, ReproError)

    def test_solver_registry_matches_exports(self):
        from repro.core.solver import ALGORITHMS

        assert set(ALGORITHMS) == {
            "basic", "pruneddp", "pruneddp+", "pruneddp++", "dpbf",
        }

    def test_bench_algorithm_registry_complete(self):
        from repro.bench.runner import ALL_ALGORITHMS, _SOLVERS

        assert set(ALL_ALGORITHMS) == set(_SOLVERS)

    def test_cli_entry_point_declared(self):
        import tomllib

        with open("pyproject.toml", "rb") as handle:
            meta = tomllib.load(handle)
        assert meta["project"]["scripts"]["repro-gst"] == "repro.cli:main"

    def test_no_runtime_dependencies(self):
        import tomllib

        with open("pyproject.toml", "rb") as handle:
            meta = tomllib.load(handle)
        assert meta["project"]["dependencies"] == []
