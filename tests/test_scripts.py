"""Tests for the standalone reproduction script."""

from __future__ import annotations

import json
import os
import subprocess
import sys

SCRIPT = os.path.join(
    os.path.dirname(__file__), "..", "scripts", "reproduce_all.py"
)


class TestReproduceAll:
    def test_single_experiment_tiny(self, tmp_path):
        out = str(tmp_path / "results")
        proc = subprocess.run(
            [
                sys.executable, SCRIPT,
                "--scale", "tiny",
                "--out", out,
                "--only", "fig10_progressive_dblp",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        manifest = json.load(open(os.path.join(out, "manifest.json")))
        assert "fig10_progressive_dblp" in manifest["experiments"]
        output = manifest["experiments"]["fig10_progressive_dblp"]["output"]
        text = open(output).read()
        assert "progressive bounds" in text
        assert "PrunedDP++" in text

    def test_filter_matches_nothing(self, tmp_path):
        out = str(tmp_path / "empty")
        proc = subprocess.run(
            [sys.executable, SCRIPT, "--scale", "tiny", "--out", out,
             "--only", "zzz-no-such"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        manifest = json.load(open(os.path.join(out, "manifest.json")))
        assert manifest["experiments"] == {}
