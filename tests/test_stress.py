"""Moderate stress tests: wider random cross-checks than the unit files.

These run a few seconds total — broad enough to catch rare-path bugs
(ties, dense label overlap, heavy graphs) without slowing the suite.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    DPBFSolver,
    PrunedDPPlusPlusSolver,
    PrunedDPSolver,
)
from repro.graph import generators


class TestWideAgreement:
    @pytest.mark.parametrize("seed", range(20))
    def test_plusplus_vs_dpbf_on_varied_instances(self, seed):
        """20 varied random instances: sizes, densities, k, frequency."""
        rng = random.Random(seed)
        n = rng.randrange(15, 60)
        m = n - 1 + rng.randrange(0, 2 * n)
        k = rng.randrange(2, 6)
        freq = rng.randrange(1, 5)
        g = generators.random_graph(
            n, m, num_query_labels=k, label_frequency=freq,
            weight_range=(1.0, float(rng.randrange(2, 30))),
            seed=seed * 7 + 1,
        )
        labels = [f"q{i}" for i in range(k)]
        pp = PrunedDPPlusPlusSolver(g, labels).solve()
        dpbf = DPBFSolver(g, labels).solve()
        assert pp.optimal
        assert pp.weight == pytest.approx(dpbf.weight), (n, m, k, freq)
        pp.tree.validate(g, labels)
        assert pp.stats.reopened == 0

    def test_integer_weight_ties(self):
        """All weights equal: massive tie-breaking stress."""
        for seed in range(5):
            g = generators.random_graph(
                25, 60, num_query_labels=4, label_frequency=3,
                weight_range=(1.0, 1.0), seed=seed,
            )
            labels = [f"q{i}" for i in range(4)]
            weights = {
                cls(g, labels).solve().weight
                for cls in (PrunedDPSolver, PrunedDPPlusPlusSolver, DPBFSolver)
            }
            assert len(weights) == 1

    def test_dense_label_overlap(self):
        """Every node carries several query labels."""
        rng = random.Random(3)
        g = generators.random_graph(
            20, 45, num_query_labels=0, seed=3
        )
        labels = [f"t{i}" for i in range(5)]
        for node in g.nodes():
            for label in rng.sample(labels, 3):
                g.add_labels(node, [label])
        pp = PrunedDPPlusPlusSolver(g, labels).solve()
        dpbf = DPBFSolver(g, labels).solve()
        assert pp.weight == pytest.approx(dpbf.weight)

    def test_long_thin_graph(self):
        """Path-like topology: deep recursion-free reconstruction."""
        from repro import Graph

        g = Graph()
        nodes = [g.add_node() for _ in range(300)]
        for u, v in zip(nodes, nodes[1:]):
            g.add_edge(u, v, 1.0)
        g.add_labels(nodes[0], ["a"])
        g.add_labels(nodes[-1], ["b"])
        g.add_labels(nodes[150], ["c"])
        result = PrunedDPPlusPlusSolver(g, ["a", "b", "c"]).solve()
        assert result.optimal
        assert result.weight == pytest.approx(299.0)
        assert len(result.tree.edges) == 299

    def test_high_degree_hub(self):
        """Star with 400 leaves: adjacency-scan stress."""
        from repro import Graph

        g = Graph()
        hub = g.add_node()
        leaves = [g.add_node() for _ in range(400)]
        for i, leaf in enumerate(leaves):
            g.add_edge(hub, leaf, 1.0 + (i % 7) * 0.1)
        g.add_labels(leaves[13], ["a"])
        g.add_labels(leaves[200], ["b"])
        g.add_labels(leaves[399], ["c"])
        result = PrunedDPPlusPlusSolver(g, ["a", "b", "c"]).solve()
        assert result.optimal
        expected = (
            g.edge_weight(hub, leaves[13])
            + g.edge_weight(hub, leaves[200])
            + g.edge_weight(hub, leaves[399])
        )
        assert result.weight == pytest.approx(expected)
