"""SVG rendering tests (well-formedness + content checks)."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro import SteinerTree, solve_gst
from repro.graph import generators
from repro.viz import save_svg, trace_to_svg, tree_to_svg


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)  # raises on malformed XML


class TestTreeToSvg:
    def test_well_formed(self, star_graph):
        tree = SteinerTree.from_edge_pairs(star_graph, [(0, 1), (0, 2), (0, 3)])
        svg = tree_to_svg(tree, star_graph)
        root = parse(svg)
        assert root.tag.endswith("svg")

    def test_contains_all_nodes_and_edges(self, star_graph):
        tree = SteinerTree.from_edge_pairs(star_graph, [(0, 1), (0, 2)])
        svg = tree_to_svg(tree, star_graph)
        root = parse(svg)
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        lines = [e for e in root.iter() if e.tag.endswith("line")]
        assert len(rects) == 1 + 3  # background + three node boxes
        assert len(lines) == 2
        # Node names appear.
        text = svg
        for name in ("h", "a", "b"):
            assert name in text

    def test_single_node_tree(self, path_graph):
        svg = tree_to_svg(SteinerTree.single_node(0), path_graph)
        parse(svg)
        assert "a" in svg

    def test_real_solver_answer(self):
        g = generators.random_graph(
            25, 50, num_query_labels=3, label_frequency=3, seed=4
        )
        result = solve_gst(g, ["q0", "q1", "q2"])
        svg = tree_to_svg(result.tree, g)
        parse(svg)
        # Edge weights rendered.
        assert "<text" in svg

    def test_escaping(self):
        from repro import Graph

        g = Graph()
        a = g.add_node(labels=["<evil> & 'label'"], name="<name>")
        b = g.add_node()
        g.add_edge(a, b, 1.0)
        svg = tree_to_svg(SteinerTree([(a, b, 1.0)]), g)
        parse(svg)  # must stay well-formed despite hostile strings


class TestTraceToSvg:
    def trace(self):
        return [(0.001, 10.0, 1.0), (0.01, 8.0, 4.0), (0.1, 8.0, 8.0)]

    def test_well_formed(self):
        svg = trace_to_svg({"PrunedDP++": self.trace()})
        root = parse(svg)
        polylines = [e for e in root.iter() if e.tag.endswith("polyline")]
        assert len(polylines) == 2  # UB + LB

    def test_multiple_series(self):
        svg = trace_to_svg({"A": self.trace(), "B": self.trace()})
        root = parse(svg)
        polylines = [e for e in root.iter() if e.tag.endswith("polyline")]
        assert len(polylines) == 4
        assert "A" in svg and "B" in svg

    def test_infinite_ub_skipped(self):
        trace = [(0.001, float("inf"), 1.0)] + self.trace()
        svg = trace_to_svg({"X": trace})
        parse(svg)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trace_to_svg({})

    def test_real_trace(self):
        g = generators.random_graph(
            40, 90, num_query_labels=4, label_frequency=4, seed=5
        )
        result = solve_gst(g, [f"q{i}" for i in range(4)])
        trace = [(p.elapsed, p.best_weight, p.lower_bound) for p in result.trace]
        svg = trace_to_svg({"PrunedDP++": trace})
        parse(svg)


class TestSaveSvg:
    def test_round_trip(self, tmp_path, star_graph):
        tree = SteinerTree.from_edge_pairs(star_graph, [(0, 1)])
        svg = tree_to_svg(tree, star_graph)
        path = save_svg(str(tmp_path / "tree.svg"), svg)
        assert open(path).read() == svg
