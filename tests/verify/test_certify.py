"""Solution-certifier tests: the checker must catch every lie."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.result import GSTResult, ProgressPoint, SearchStats
from repro.core.solver import solve_gst
from repro.core.tree import SteinerTree
from repro.errors import CertificationError
from repro.graph import generators
from repro.verify import certify_incumbent, certify_result

INF = float("inf")


@pytest.fixture
def instance():
    graph = generators.random_graph(
        20, 40, num_query_labels=3, label_frequency=3, seed=7
    )
    return graph, ["q0", "q1", "q2"]


@pytest.fixture
def solved(instance):
    graph, labels = instance
    return graph, labels, solve_gst(graph, labels, algorithm="pruneddp++")


def test_real_answer_certifies(solved):
    graph, labels, result = solved
    cert = certify_result(graph, result, labels=labels, epsilon=0.0)
    assert cert.ok, cert.violations
    assert "tree" in cert.passed
    assert "weight" in cert.passed
    assert "trace" in cert.passed
    cert.raise_if_failed()  # no-op when ok


def test_every_tier_certifies(instance):
    graph, labels = instance
    for algorithm in ("dpbf", "basic", "pruneddp", "pruneddp+", "pruneddp++"):
        result = solve_gst(graph, labels, algorithm=algorithm)
        cert = certify_result(graph, result, labels=labels)
        assert cert.ok, (algorithm, cert.violations)


def test_understated_weight_caught(solved):
    graph, labels, result = solved
    lied = dataclasses.replace(result, weight=result.weight / 2.0, trace=[])
    cert = certify_result(graph, lied, labels=labels)
    assert not cert.ok
    assert any("weight" in v for v in cert.violations)


def test_missing_coverage_caught(solved):
    graph, labels, result = solved
    cert = certify_result(graph, result, labels=labels + ["q-not-covered"])
    assert not cert.ok
    assert any("tree" in v for v in cert.violations)


def test_non_tree_edge_set_caught(solved):
    graph, labels, result = solved
    # Duplicating an edge turns the edge set into a multigraph cycle.
    cyclic = SteinerTree(list(result.tree.edges) + [result.tree.edges[0]])
    lied = dataclasses.replace(
        result, tree=cyclic, weight=cyclic.weight, trace=[]
    )
    cert = certify_result(graph, lied, labels=labels)
    assert any("tree" in v for v in cert.violations)


def test_fabricated_edge_caught(solved):
    graph, labels, result = solved
    u, v, w = result.tree.edges[0]
    forged = SteinerTree(
        [(a, b, x * 0.5 if (a, b) == (u, v) else x) for a, b, x in result.tree.edges]
    )
    lied = dataclasses.replace(
        result, tree=forged, weight=forged.weight, trace=[]
    )
    cert = certify_result(graph, lied, labels=labels)
    assert any("tree" in v for v in cert.violations)


def test_shape_mismatch_caught(solved):
    graph, labels, result = solved
    no_tree = dataclasses.replace(result, tree=None, trace=[])
    cert = certify_result(graph, no_tree, labels=labels)
    assert any("shape" in v for v in cert.violations)


def test_false_optimal_certificate_caught(solved):
    graph, labels, result = solved
    # optimal=True with a lower bound that does not meet the weight:
    # GSTResult.__post_init__ normalizes optimal answers, so build the
    # inconsistency by mutating after construction (as a buggy engine
    # or deserializer would).
    lied = dataclasses.replace(result, trace=[])
    lied.lower_bound = result.weight / 2.0
    lied.optimal = True
    cert = certify_result(graph, lied, labels=labels)
    assert any("optimal-certificate" in v for v in cert.violations)


def test_crossed_lower_bound_caught(solved):
    graph, labels, result = solved
    lied = dataclasses.replace(result, optimal=False, trace=[])
    lied.lower_bound = result.weight * 2.0
    cert = certify_result(graph, lied, labels=labels)
    assert any("lb-noncrossing" in v for v in cert.violations)


def test_epsilon_exit_enforced(solved):
    graph, labels, result = solved
    loose = dataclasses.replace(result, optimal=False, trace=[])
    loose.lower_bound = result.weight / 10.0
    cert = certify_result(graph, loose, labels=labels, epsilon=0.1)
    assert any("epsilon-exit" in v for v in cert.violations)
    # Without an epsilon claim the same anytime answer is fine.
    assert certify_result(graph, loose, labels=labels).ok


def test_trace_invariants_enforced(solved):
    graph, labels, result = solved
    regressed = dataclasses.replace(
        result,
        trace=[
            ProgressPoint(0.0, result.weight, 0.0),
            ProgressPoint(0.1, result.weight * 2.0, 0.0),
        ],
    )
    cert = certify_result(graph, regressed, labels=labels)
    assert any("regressed" in v for v in cert.violations)

    stale_final = dataclasses.replace(
        result, trace=[ProgressPoint(0.0, result.weight * 2.0, 0.0)]
    )
    cert = certify_result(graph, stale_final, labels=labels)
    assert any("final" in v for v in cert.violations)


def test_reference_optimum_checks(solved):
    graph, labels, result = solved
    better = certify_result(
        graph, result, labels=labels, expected_weight=result.weight * 2.0
    )
    assert any("beats" in v for v in better.violations)
    worse = certify_result(
        graph, result, labels=labels, expected_weight=result.weight / 2.0
    )
    assert any("matches-optimum" in v for v in worse.violations)
    exact = certify_result(
        graph, result, labels=labels, expected_weight=result.weight
    )
    assert exact.ok, exact.violations


def test_raise_if_failed_raises(solved):
    graph, labels, result = solved
    lied = dataclasses.replace(result, weight=result.weight / 2.0, trace=[])
    cert = certify_result(graph, lied, labels=labels)
    with pytest.raises(CertificationError):
        cert.raise_if_failed()


def test_infeasible_result_certifies(path_graph):
    # An empty anytime answer (cancelled before any work) is consistent.
    empty = GSTResult(
        algorithm="Basic",
        labels=("x", "y"),
        tree=None,
        weight=INF,
        lower_bound=0.0,
        optimal=False,
        stats=SearchStats(cancelled=True),
    )
    cert = certify_result(path_graph, empty, labels=["x", "y"], epsilon=0.0)
    assert cert.ok, cert.violations


class TestCertifyIncumbent:
    def test_valid_incumbent_passes(self, solved):
        graph, labels, result = solved
        certify_incumbent(
            graph, labels, result.tree, result.weight, result.lower_bound
        )

    def test_missing_tree_raises(self, path_graph):
        with pytest.raises(CertificationError):
            certify_incumbent(path_graph, ["x", "y"], None, 3.0, 0.0)

    def test_weight_mismatch_raises(self, solved):
        graph, labels, result = solved
        with pytest.raises(CertificationError):
            certify_incumbent(
                graph, labels, result.tree, result.weight / 2.0, 0.0
            )

    def test_crossing_bound_raises(self, solved):
        graph, labels, result = solved
        with pytest.raises(CertificationError):
            certify_incumbent(
                graph, labels, result.tree, result.weight, result.weight * 2.0
            )

    def test_engine_hook_runs_clean(self, instance):
        graph, labels = instance
        for algorithm in ("basic", "pruneddp", "pruneddp+", "pruneddp++"):
            result = solve_gst(
                graph, labels, algorithm=algorithm, debug_certify=True
            )
            assert result.optimal
