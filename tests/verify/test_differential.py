"""Differential runner tests: sweeps, cross-checks, minimization, replay."""

from __future__ import annotations

import json

import pytest

from repro import Graph
from repro.graph.io import load_graph
from repro.verify import (
    BRUTE_FORCE_FUZZ_NODES,
    RoundReport,
    TierRun,
    generate_instance,
    minimize_reproducer,
    run_round,
    run_sweep,
    verify_instance,
    write_reproducer,
)
from repro.verify.differential import _cross_check

INF = float("inf")


def test_generate_instance_is_deterministic():
    g1, labels1 = generate_instance(42)
    g2, labels2 = generate_instance(42)
    assert labels1 == labels2
    assert g1.num_nodes == g2.num_nodes
    assert sorted(g1.edges()) == sorted(g2.edges())
    g3, _ = generate_instance(43)
    assert (g3.num_nodes, sorted(g3.edges())) != (g1.num_nodes, sorted(g1.edges()))


def test_generate_instance_respects_caps():
    for seed in range(30):
        graph, labels = generate_instance(seed, max_nodes=10, max_labels=3)
        assert 4 <= graph.num_nodes <= 10
        assert 2 <= len(labels) <= 3


def test_round_runs_all_applicable_tiers():
    report = run_round(0, max_nodes=BRUTE_FORCE_FUZZ_NODES)
    assert report.ok, (report.disagreement, report.violations)
    assert set(report.runs) == {
        "bruteforce", "dpbf", "basic", "pruneddp", "pruneddp+", "pruneddp++",
    }


def test_bruteforce_skipped_on_large_instances():
    graph, labels = generate_instance(0)
    big = Graph()
    for _ in range(BRUTE_FORCE_FUZZ_NODES + 2):
        big.add_node(labels=["x"])
    for i in range(1, big.num_nodes):
        big.add_edge(i - 1, i, 1.0)
    report = verify_instance(big, ["x"])
    assert "bruteforce" not in report.runs
    assert report.ok


def test_small_sweep_is_clean(tmp_path):
    sweep = run_sweep(
        12, seed=0, metamorphic_every=6, reproducer_dir=str(tmp_path)
    )
    assert sweep.ok, [f.disagreement or f.violations for f in sweep.failures]
    assert sweep.rounds == 12
    assert sweep.certified > 0
    assert not list(tmp_path.iterdir())  # nothing failed, nothing written


def test_epsilon_sweep_is_clean():
    sweep = run_sweep(8, seed=100, epsilon=0.5)
    assert sweep.ok, [f.disagreement or f.violations for f in sweep.failures]


def test_unknown_tier_rejected(path_graph):
    with pytest.raises(ValueError):
        verify_instance(path_graph, ["x", "y"], algorithms=["nope"])


def test_cross_check_flags_weight_disagreement():
    report = RoundReport(seed=0, num_nodes=3, num_edges=2, labels=("x",))
    report.runs["dpbf"] = TierRun(algorithm="dpbf", weight=3.0)
    report.runs["basic"] = TierRun(algorithm="basic", weight=4.0)
    _cross_check(report, epsilon=0.0)
    assert report.disagreement is not None
    assert "weight disagreement" in report.disagreement


def test_cross_check_flags_feasibility_disagreement():
    report = RoundReport(seed=0, num_nodes=3, num_edges=2, labels=("x",))
    report.runs["dpbf"] = TierRun(algorithm="dpbf", weight=3.0)
    report.runs["basic"] = TierRun(
        algorithm="basic", weight=INF, infeasible=True
    )
    _cross_check(report, epsilon=0.0)
    assert report.disagreement is not None
    assert "feasibility" in report.disagreement


def test_cross_check_allows_epsilon_slack():
    report = RoundReport(seed=0, num_nodes=3, num_edges=2, labels=("x",))
    report.runs["dpbf"] = TierRun(algorithm="dpbf", weight=10.0)
    report.runs["basic"] = TierRun(algorithm="basic", weight=14.0)
    _cross_check(report, epsilon=0.5)
    assert report.disagreement is None
    report.runs["pruneddp"] = TierRun(algorithm="pruneddp", weight=16.0)
    _cross_check(report, epsilon=0.5)
    assert report.disagreement is not None


def test_minimizer_shrinks_while_failure_persists():
    # Synthetic failure oracle: "fails" whenever the graph still contains
    # the specific edge (0, 1) and the query still contains "x".
    graph = Graph()
    for i in range(6):
        graph.add_node(labels=["x"] if i < 2 else ["pad"])
    graph.add_edge(0, 1, 1.0)
    graph.add_edge(1, 2, 1.0)
    graph.add_edge(2, 3, 1.0)
    graph.add_edge(3, 4, 1.0)
    graph.add_edge(4, 5, 1.0)

    def failing(g, labels):
        return "x" in labels and any(
            {u, v} == {0, 1} for u, v, _ in g.edges()
        )

    small, labels = minimize_reproducer(graph, ["x", "pad"], failing)
    assert failing(small, labels)
    assert labels == ["x"]
    assert small.num_edges == 1
    assert small.num_nodes == 2


def test_minimizer_returns_input_when_not_failing(path_graph):
    graph, labels = minimize_reproducer(
        path_graph, ["x", "y"], lambda g, l: False
    )
    assert graph is path_graph
    assert labels == ["x", "y"]


def test_reproducer_round_trips(tmp_path):
    graph, labels = generate_instance(5, max_nodes=10)
    report = RoundReport(
        seed=5,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        labels=tuple(labels),
        disagreement="synthetic",
    )
    report.runs["dpbf"] = TierRun(algorithm="dpbf", weight=3.0)
    report.runs["basic"] = TierRun(algorithm="basic", weight=INF)
    stem = write_reproducer(graph, labels, report, str(tmp_path))
    reloaded = load_graph(stem)
    assert reloaded.num_nodes == graph.num_nodes
    assert sorted(reloaded.edges()) == sorted(graph.edges())
    with open(stem + ".json", encoding="utf-8") as fh:
        record = json.load(fh)
    assert record["disagreement"] == "synthetic"
    assert record["weights"] == {"dpbf": 3.0, "basic": "inf"}
    assert "repro verify" in record["replay"]
    # The replayed instance gets the same verdict structure.
    replay = verify_instance(reloaded, record["labels"])
    assert set(replay.runs)


def test_broken_tier_is_caught_end_to_end(monkeypatch):
    # Sabotage one tier and make sure a real sweep round catches it:
    # the strongest possible test of the harness itself.
    import repro.verify.differential as differential

    real_solve = differential.solve_gst

    def sabotaged(graph, labels, *, algorithm="pruneddp++", **kwargs):
        result = real_solve(graph, labels, algorithm=algorithm, **kwargs)
        if algorithm == "basic" and result.weight < INF:
            result.weight *= 2.0  # wrong answer, tree untouched
        return result

    monkeypatch.setattr(differential, "solve_gst", sabotaged)
    failed = []
    for seed in range(10):
        report = run_round(seed, max_nodes=10)
        if not report.ok:
            failed.append(report)
    assert failed, "sabotaged tier was never caught"
    # Both detection layers fire: the certifier (weight != tree) and
    # the cross-check (tiers disagree).
    assert any(r.disagreement for r in failed) or all(
        r.violations for r in failed
    )
