"""Metamorphic transform tests: each rewrite has a known-exact effect."""

from __future__ import annotations

import random

import pytest

from repro.core.solver import solve_gst
from repro.graph import generators
from repro.verify import (
    add_disconnected_clutter,
    clone_graph,
    inject_duplicate_labels,
    metamorphic_checks,
    renumber_nodes,
    scale_weights,
)


@pytest.fixture
def instance():
    # seed 13 gives a strictly positive optimum (~8.14), so the scaled /
    # doubled-reference comparisons below cannot pass vacuously.
    graph = generators.random_graph(
        16, 32, num_query_labels=3, label_frequency=3, seed=13
    )
    return graph, ["q0", "q1", "q2"]


def test_clone_graph_is_faithful(instance):
    graph, _ = instance
    copy, mapping = clone_graph(graph)
    assert copy.num_nodes == graph.num_nodes
    assert copy.num_edges == graph.num_edges
    assert mapping == {i: i for i in range(graph.num_nodes)}
    for node in range(graph.num_nodes):
        assert copy.labels_of(node) == graph.labels_of(node)
    assert sorted(copy.edges()) == sorted(graph.edges())


def test_clone_graph_skip_edge_and_subset(instance):
    graph, _ = instance
    u, v, _w = next(iter(graph.edges()))
    pruned, _ = clone_graph(graph, skip_edge=(v, u))  # order-insensitive
    assert pruned.num_edges == graph.num_edges - 1

    keep = list(range(0, graph.num_nodes, 2))
    subset, mapping = clone_graph(graph, keep_nodes=keep)
    assert subset.num_nodes == len(keep)
    assert set(mapping) == set(keep)
    kept = set(keep)
    expected = sum(1 for a, b, _ in graph.edges() if a in kept and b in kept)
    assert subset.num_edges == expected


def test_renumber_preserves_optimum(instance):
    graph, labels = instance
    base = solve_gst(graph, labels).weight
    renumbered, mapping = renumber_nodes(graph, random.Random(3))
    assert sorted(mapping.values()) == list(range(graph.num_nodes))
    assert solve_gst(renumbered, labels).weight == pytest.approx(base)


def test_scale_weights_scales_optimum(instance):
    graph, labels = instance
    base = solve_gst(graph, labels).weight
    scaled = scale_weights(graph, 2.5)
    assert solve_gst(scaled, labels).weight == pytest.approx(2.5 * base)
    with pytest.raises(ValueError):
        scale_weights(graph, 0.0)


def test_duplicate_labels_preserve_optimum(instance):
    graph, labels = instance
    base = solve_gst(graph, labels).weight
    duplicated, extended = inject_duplicate_labels(graph, labels)
    assert len(extended) == 2 * len(labels)
    for label in labels:
        alias = f"{label}#dup"
        assert sorted(duplicated.nodes_with_label(alias)) == sorted(
            graph.nodes_with_label(label)
        )
    assert solve_gst(duplicated, extended).weight == pytest.approx(base)


def test_clutter_preserves_optimum(instance):
    graph, labels = instance
    base = solve_gst(graph, labels).weight
    cluttered = add_disconnected_clutter(graph, random.Random(5), num_nodes=6)
    assert cluttered.num_nodes == graph.num_nodes + 6
    assert solve_gst(cluttered, labels).weight == pytest.approx(base)


def test_metamorphic_checks_clean_on_every_tier(instance):
    graph, labels = instance
    for algorithm in ("dpbf", "basic", "pruneddp", "pruneddp+", "pruneddp++"):
        violations = metamorphic_checks(
            graph, labels, algorithm=algorithm, seed=0
        )
        assert violations == [], (algorithm, violations)


def test_metamorphic_checks_flag_wrong_base_weight(instance):
    # Feeding a wrong reference weight must trip every invariant that
    # compares against it — proves the checks are not vacuous.
    graph, labels = instance
    base = solve_gst(graph, labels).weight
    violations = metamorphic_checks(graph, labels, base_weight=base * 2.0)
    assert violations
    names = {v.split(":", 1)[0] for v in violations}
    assert {"renumber", "scale", "duplicate-labels", "clutter"} <= names
