"""Regression pins for the bound/ratio bugfix sweep.

Every test here encodes a defect the differential harness exists to
catch.  The constructor- and engine-level tests fail on the pre-fix
code: zero-weight optima used to come back ``optimal=False``/``ratio
inf`` (and could drain the queue into a state-limit error with the
proven answer already in hand), crossed lower bounds used to survive
into results, traces, and the persisted cache, and the brute-force
oracle used to fold absent labels into plain infeasibility instead of
raising the typed error every other tier raises.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.bruteforce import brute_force_gst
from repro.core.result import GSTResult, ProgressPoint, SearchStats
from repro.core.solver import ALGORITHMS, solve_gst
from repro.core.tree import SteinerTree
from repro.errors import InfeasibleQueryError, LimitExceededError, StoreCorruptError
from repro.graph import Graph, generators
from repro.service import GraphIndex, QueryExecutor
from repro.store.result_cache import CachedAnswer, ResultCache

INF = float("inf")


def _result(**overrides) -> GSTResult:
    base = dict(
        algorithm="basic",
        labels=("x",),
        tree=SteinerTree([(0, 1, 5.0)]),
        weight=5.0,
        lower_bound=0.0,
        optimal=False,
        stats=SearchStats(),
    )
    base.update(overrides)
    return GSTResult(**base)


class TestZeroWeightOptimal:
    """A weight-0.0 covering tree is trivially optimal (weights >= 0)."""

    def test_constructor_normalizes_zero_weight(self):
        result = _result(
            tree=SteinerTree([], nodes=(3,)), weight=0.0, optimal=False
        )
        assert result.optimal
        assert result.ratio == 1.0
        assert result.lower_bound == 0.0

    def test_all_tiers_classify_zero_weight_as_optimal(self):
        graph = Graph()
        hub = graph.add_node(labels=["x", "y", "z"])
        other = graph.add_node(labels=["x"])
        graph.add_edge(hub, other, 4.0)
        labels = ["x", "y", "z"]
        for algorithm in sorted(ALGORITHMS):
            result = solve_gst(graph, labels, algorithm=algorithm)
            assert result.weight == 0.0, algorithm
            assert result.optimal, algorithm
            assert result.ratio == 1.0, algorithm
        weight, tree = brute_force_gst(graph, labels)
        assert weight == 0.0 and tree is not None

    def test_engine_stops_promptly_on_zero_weight_incumbent(self):
        # One hub node carries the whole query; 300 more nodes carry a
        # query label, so the engine seeds 300+ zero-cost states.  The
        # first pop of the hub yields a weight-0 incumbent; the search
        # must stop there instead of draining every remaining seed —
        # pre-fix the epsilon check demanded a positive lower bound, so
        # the drain blew through max_states and raised
        # LimitExceededError with the proven optimum already in hand.
        graph = Graph()
        hub = graph.add_node(labels=["x", "y"])
        previous = hub
        for _ in range(300):
            node = graph.add_node(labels=["x"])
            graph.add_edge(previous, node, 1.0)
            previous = node
        try:
            result = solve_gst(
                graph,
                ["x", "y"],
                algorithm="basic",
                max_states=64,
                on_limit="raise",
            )
        except LimitExceededError:
            pytest.fail("engine drained the queue past max_states "
                        "despite holding a weight-0 optimum")
        assert result.weight == 0.0
        assert result.optimal
        assert result.stats.states_popped < 64


class TestLowerBoundClamping:
    """No report may ever claim lower_bound > best_weight."""

    def test_crossing_bound_is_discarded(self):
        result = _result(lower_bound=7.0)
        assert result.lower_bound == 0.0  # untrustworthy bound dropped
        assert result.ratio == INF        # never a false guarantee

    def test_rounding_level_crossing_clamps_to_weight(self):
        result = _result(lower_bound=5.0 + 1e-12)
        assert result.lower_bound == 5.0
        assert result.ratio == 1.0
        assert not result.optimal  # clamping proves the ratio, not optimality

    def test_negative_bound_resets_to_zero(self):
        assert _result(lower_bound=-3.0).lower_bound == 0.0

    def test_progress_point_enforces_non_crossing(self):
        crossed = ProgressPoint(0.0, 5.0, 7.0)
        assert crossed.lower_bound == 0.0
        assert crossed.ratio == INF
        rounded = ProgressPoint(0.0, 5.0, 5.0 + 1e-12)
        assert rounded.lower_bound == 5.0
        assert rounded.ratio == 1.0

    def test_live_traces_never_cross(self):
        graph = generators.random_graph(
            40, 90, num_query_labels=4, label_frequency=4, seed=21
        )
        for algorithm in ("basic", "pruneddp", "pruneddp+", "pruneddp++"):
            for epsilon in (0.0, 0.25):
                result = solve_gst(
                    graph,
                    ["q0", "q1", "q2", "q3"],
                    algorithm=algorithm,
                    epsilon=epsilon,
                )
                assert result.lower_bound <= result.weight
                for point in result.trace:
                    assert point.lower_bound <= point.best_weight, (
                        algorithm, epsilon, point
                    )


class TestAbsentLabelErrors:
    """An unknown label is a typed error on every tier, not inf."""

    @pytest.mark.parametrize(
        "algorithm", ["bruteforce"] + sorted(ALGORITHMS)
    )
    def test_every_tier_raises_typed_error(self, path_graph, algorithm):
        labels = ["x", "no-such-label"]
        with pytest.raises(InfeasibleQueryError):
            if algorithm == "bruteforce":
                brute_force_gst(path_graph, labels)
            else:
                solve_gst(path_graph, labels, algorithm=algorithm)

    def test_present_but_disconnected_is_not_an_error(self):
        # The typed error is strictly for labels absent from the graph;
        # a present-but-unreachable group stays plain infeasibility.
        graph = Graph()
        graph.add_node(labels=["x"])
        graph.add_node(labels=["y"])
        weight, tree = brute_force_gst(graph, ["x", "y"])
        assert weight == INF and tree is None

    def test_service_path_maps_to_infeasible_outcome(self, path_graph):
        outcome = GraphIndex(path_graph).execute(["x", "no-such-label"])
        assert not outcome.ok
        assert isinstance(outcome.error, InfeasibleQueryError)
        assert outcome.trace.status == "infeasible"


class TestCachedBoundHygiene:
    """Crossed bounds must not enter or leave the result cache."""

    @pytest.fixture
    def graph(self):
        return generators.random_graph(
            30, 60, num_query_labels=3, label_frequency=4, seed=9
        )

    def test_from_record_rejects_crossing_bound(self, graph):
        result = solve_gst(graph, ["q0", "q1"])
        cache = ResultCache()
        entry = cache.put(["q0", "q1"], "pruneddp++", result)
        record = entry.to_record()
        record["lower_bound"] = record["weight"] * 2.0
        record["optimal"] = False
        with pytest.raises(StoreCorruptError):
            CachedAnswer.from_record(record)

    def _poison(self, index, labels):
        """Cache an answer whose claimed weight is half the real one."""
        honest = index.solve(labels)
        lied = dataclasses.replace(honest, trace=[])
        lied.weight = honest.weight / 2.0
        index.result_cache = ResultCache()
        assert index.result_cache.put(labels, "pruneddp++", lied) is not None
        return honest

    def test_uncertified_executor_serves_poisoned_hit(self, graph):
        index = GraphIndex(graph)
        honest = self._poison(index, ["q0", "q1"])
        with QueryExecutor(index, max_workers=1) as executor:
            outcome = executor.run_batch([["q0", "q1"]])[0]
        assert outcome.trace.result_cache == "hit"
        assert outcome.result.weight == pytest.approx(honest.weight / 2.0)

    def test_certifying_executor_evicts_and_resolves(self, graph):
        index = GraphIndex(graph)
        honest = self._poison(index, ["q0", "q1"])
        with QueryExecutor(
            index, max_workers=1, certify_cache_hits=True
        ) as executor:
            outcome = executor.run_batch([["q0", "q1"]])[0]
        assert outcome.ok
        assert outcome.trace.result_cache != "hit"
        assert outcome.result.weight == pytest.approx(honest.weight)
        assert index.result_cache.evictions >= 1

    def test_certifying_executor_passes_honest_hits(self, graph):
        index = GraphIndex(graph)
        index.result_cache = ResultCache()
        labels = ["q0", "q1"]
        honest = index.solve(labels)
        index.result_cache.put(labels, "pruneddp++", honest)
        with QueryExecutor(
            index, max_workers=1, certify_cache_hits=True
        ) as executor:
            outcome = executor.run_batch([labels])[0]
        assert outcome.trace.result_cache == "hit"
        assert outcome.result.weight == pytest.approx(honest.weight)
        assert index.result_cache.evictions == 0
